//! Function schedulers (paper §4.3): registration, executor selection with
//! data-locality and load heuristics, DAG schedule broadcast, and
//! fault-tolerance bookkeeping (whole-DAG re-execution on timeout, §4.5).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cloudburst_anna::metrics as mkeys;
use cloudburst_anna::AnnaClient;
use cloudburst_lattice::Key;
use cloudburst_net::{Address, Endpoint, ReplyHandle};
use cloudburst_runtime::{Actor, ActorCtx, ActorHandle, Poll, Runtime as ActorRuntime};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::cache::CacheRequest;
use crate::consistency::session::SessionMeta;
use crate::dag::{DagError, DagSpec};
use crate::executor::{DagPlan, DagSchedule, DagTrigger, ExecutorRequest, OutputTarget};
use crate::topology::Topology;
use crate::types::{Arg, ConsistencyLevel, ExecutorId, InvocationResult, RequestId, VmId};

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Executors above this utilization are avoided ("the scheduler tracks
    /// this utilization and avoids overloaded nodes", §4.3).
    pub high_util_threshold: f64,
    /// DAG re-execution timeout in paper milliseconds (§4.5).
    pub dag_timeout_ms: f64,
    /// How many executors each DAG function is pinned on at registration.
    pub initial_pin_replicas: usize,
    /// How often executor metrics are refreshed from Anna, in paper ms.
    pub metrics_refresh_ms: f64,
    /// Give up re-executing a DAG after this many attempts.
    pub max_retries: u32,
    /// Maximum keys per batched KVS request the scheduler issues (metrics
    /// refresh, DAG-registration function checks). The refresh window is
    /// `metrics_refresh_ms`; this caps how much of it one node absorbs.
    pub kvs_batch_max_keys: usize,
    /// Maximum entries in the execution-plan cache. Repeated `call_dag`s
    /// with the same (DAG, reference-key set) reuse the last computed
    /// assignment while the metrics generation and topology epoch are
    /// unchanged, skipping the full §4.3 `pick_executor` policy on the hot
    /// path. The trade-off: within one metrics window a cached plan *pins*
    /// its placement, so the policy's random tie-breaking (which spreads a
    /// hot key's load across equally-covered replicas) resumes only at the
    /// next refresh — backpressure still self-corrects, because a pinned
    /// executor that saturates crosses the utilization threshold at that
    /// refresh and the recomputed plan avoids it. `0` disables the cache
    /// (every call re-runs the policy, restoring per-call spreading — the
    /// pre-plan-cache behaviour, used as the bench baseline).
    pub plan_cache_max_entries: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            high_util_threshold: 0.7,
            dag_timeout_ms: 10_000.0,
            initial_pin_replicas: 1,
            metrics_refresh_ms: 100.0,
            max_retries: 3,
            kvs_batch_max_keys: 128,
            plan_cache_max_entries: 1024,
        }
    }
}

/// Messages handled by schedulers.
#[derive(Debug)]
pub enum SchedulerRequest {
    /// Register a DAG: verify functions, pin them, persist the topology.
    RegisterDag {
        /// The DAG.
        spec: DagSpec,
        /// Registration outcome.
        reply: ReplyHandle<Result<(), DagError>>,
    },
    /// Invoke a single function.
    CallFunction {
        /// Function name.
        function: String,
        /// Arguments.
        args: Vec<Arg>,
        /// The caller's region: placement prefers executors there when data
        /// locality and load do not decide.
        region: u16,
        /// Result channel (forwarded to the executor).
        reply: ReplyHandle<InvocationResult>,
    },
    /// Execute a registered DAG.
    CallDag {
        /// DAG name.
        name: String,
        /// Per-node arguments.
        args: HashMap<usize, Vec<Arg>>,
        /// The caller's region (see [`SchedulerRequest::CallFunction`]).
        region: u16,
        /// If set, the sink stores its result under this key (the client
        /// holds a `CloudburstFuture`); otherwise the result is returned
        /// directly through `reply`.
        output_key: Option<Key>,
        /// Direct-response channel.
        reply: Option<ReplyHandle<InvocationResult>>,
    },
    /// A sink executor reports DAG completion.
    DagDone {
        /// The completed request.
        request_id: RequestId,
    },
    /// A cache's periodic keyset report (the scheduler's local cached-key
    /// index, §4.3).
    CacheKeyset {
        /// Reporting VM.
        vm: VmId,
        /// Keys cached there.
        keys: Vec<Key>,
    },
    /// Pin `function` onto one more (underloaded) executor — sent by the
    /// monitoring engine when a function falls behind its call rate (§4.4).
    PinFunction {
        /// Function to scale up.
        function: String,
    },
    /// Reduce `function` to at most `target` pinned executors (scale-down).
    TrimPins {
        /// Function to scale down.
        function: String,
        /// Desired replica count.
        target: usize,
    },
    /// Stop the scheduler thread.
    Shutdown,
}

/// Handle to a running scheduler.
#[derive(Debug)]
pub struct SchedulerHandle {
    /// The scheduler's message address.
    pub addr: Address,
    handle: ActorHandle,
}

impl SchedulerHandle {
    /// Spawn a scheduler as an actor on the shared runtime; the metrics
    /// refresh / timeout sweep cadence rides the runtime's timer heap.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        runtime: &ActorRuntime,
        scheduler_id: u64,
        endpoint: Endpoint,
        topology: Arc<Topology>,
        anna: AnnaClient,
        level: ConsistencyLevel,
        config: SchedulerConfig,
        trace_enabled: bool,
    ) -> Self {
        let addr = endpoint.addr();
        topology.add_scheduler(addr);
        let handle = runtime.register(format!("cb-sched-{scheduler_id}"));
        {
            let waker = handle.clone();
            endpoint.set_notify(move || waker.notify());
        }
        let tick = endpoint
            .network()
            .time_scale()
            .ms(config.metrics_refresh_ms)
            .max(Duration::from_micros(500));
        let worker = Worker {
            id: scheduler_id,
            endpoint,
            topology,
            anna,
            level,
            config,
            trace_enabled,
            dags: HashMap::new(),
            pins: HashMap::new(),
            utilization: HashMap::new(),
            cached_keys: HashMap::new(),
            pending: HashMap::new(),
            call_counts: HashMap::new(),
            incoming_total: 0,
            plan_cache: HashMap::new(),
            sched_gen: 0,
            plan_hits: 0,
            plan_misses: 0,
            rng: StdRng::seed_from_u64(0x5CAF ^ scheduler_id),
            tick,
            // lint: allow(L003): metrics refresh paces on wall clock (scaled paper-ms), by design
            next_refresh: Instant::now() + tick,
        };
        runtime.start(&handle, worker);
        Self { addr, handle }
    }

    /// Wait for the scheduler actor to exit.
    pub fn join(self) {
        self.handle.join();
    }
}

/// One live pinned executor as `pick_executor` scores it:
/// `(id, addr, vm, region)`.
type Candidate = (ExecutorId, Address, VmId, u16);

struct PendingDag {
    name: String,
    args: Arc<HashMap<usize, Vec<Arg>>>,
    region: u16,
    output_key: Option<Key>,
    // lock-rank: 50 cb-reply-slot
    reply_slot: Arc<Mutex<Option<ReplyHandle<InvocationResult>>>>,
    cache_addrs: Vec<Address>,
    deadline: Instant,
    retries: u32,
}

/// Identity of a cached execution plan: the DAG, the reference-key set its
/// data-locality decision was scored against (§4.3 — only the *ref*
/// arguments steer placement; value arguments never do), and the caller's
/// region (the same call from a different region is a different placement
/// decision — the region term must not be pinned by another region's plan).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    dag: String,
    refs: Vec<(usize, Key)>,
    region: u16,
}

impl PlanKey {
    fn new(dag: &str, args: &HashMap<usize, Vec<Arg>>, region: u16) -> Self {
        let mut refs: Vec<(usize, Key)> = args
            .iter()
            .flat_map(|(&node, list)| {
                list.iter()
                    .filter_map(move |a| a.as_ref_key().cloned().map(|k| (node, k)))
            })
            .collect();
        refs.sort_unstable();
        Self {
            dag: dag.to_string(),
            refs,
            region,
        }
    }
}

/// One plan-cache entry: the shared plan plus the generation stamps it was
/// computed under. A hit requires both stamps to still be current, so a
/// metrics refresh, any pin/unpin, or any topology change (crash, scale)
/// invalidates it — a cached schedule can never reach a dead executor.
struct CachedPlan {
    plan: Arc<DagPlan>,
    sched_gen: u64,
    topo_epoch: u64,
}

struct Worker {
    id: u64,
    endpoint: Endpoint,
    topology: Arc<Topology>,
    anna: AnnaClient,
    level: ConsistencyLevel,
    config: SchedulerConfig,
    trace_enabled: bool,
    dags: HashMap<String, Arc<DagSpec>>,
    /// function → executors it is pinned on.
    pins: HashMap<String, Vec<ExecutorId>>,
    /// Executor utilization, refreshed from Anna (§4.3).
    utilization: HashMap<ExecutorId, f64>,
    /// VM → cached keys (the scheduler's local index, §4.3).
    cached_keys: HashMap<VmId, HashSet<Key>>,
    pending: HashMap<RequestId, PendingDag>,
    call_counts: HashMap<String, u64>,
    incoming_total: u64,
    /// Execution-plan cache: repeated calls of one DAG with one ref-key set
    /// reuse the assignment instead of re-running `pick_executor` per node.
    plan_cache: HashMap<PlanKey, CachedPlan>,
    /// Scheduling-state generation: bumped on every metrics refresh and
    /// every pin-set change, invalidating all cached plans.
    sched_gen: u64,
    /// Plan-cache hit/miss counters (published with the scheduler stats).
    plan_hits: u64,
    plan_misses: u64,
    rng: StdRng,
    /// Metrics refresh / timeout sweep interval (scaled paper-ms).
    tick: Duration,
    /// Next refresh deadline, re-armed on the runtime's timer heap.
    next_refresh: Instant,
}

static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);

/// Per-poll mailbox budget: bound one poll's work so co-scheduled actors on
/// the shared pool stay live under a call storm.
const POLL_BUDGET: usize = 128;

impl Actor for Worker {
    fn poll(&mut self, ctx: &mut ActorCtx<'_>) -> Poll {
        let mut budget = POLL_BUDGET;
        let mut drained = 0usize;
        while budget > 0 {
            let Some(envelope) = self.endpoint.try_recv() else {
                break;
            };
            drained += 1;
            budget -= 1;
            if let Ok(req) = envelope.downcast::<SchedulerRequest>() {
                if self.handle(req) {
                    return Poll::Shutdown;
                }
            }
        }
        ctx.note_mailbox_depth(drained);
        // lint: allow(L003): refresh cadence check against the armed deadline
        let now = Instant::now();
        if now >= self.next_refresh {
            self.next_refresh = now + self.tick;
            self.refresh_metrics();
            self.check_timeouts();
            self.publish_stats();
        }
        if budget == 0 {
            Poll::Yield
        } else {
            Poll::Idle(Some(self.next_refresh))
        }
    }
}

impl Worker {
    fn handle(&mut self, request: SchedulerRequest) -> bool {
        match request {
            SchedulerRequest::RegisterDag { spec, reply } => {
                let outcome = self.register_dag(spec);
                reply.reply(outcome);
            }
            SchedulerRequest::CallFunction {
                function,
                args,
                region,
                reply,
            } => {
                self.incoming_total += 1;
                let refs: Vec<Key> = args
                    .iter()
                    .filter_map(|a| a.as_ref_key().cloned())
                    .collect();
                match self.pick_executor(&function, &refs, region, true) {
                    Some((_, addr)) => {
                        let _ = self.endpoint.send(
                            addr,
                            ExecutorRequest::InvokeSingle {
                                function,
                                args,
                                reply,
                                response_key: None,
                            },
                        );
                    }
                    None => reply.reply(InvocationResult::Err(format!(
                        "no executor available for {function:?}"
                    ))),
                }
            }
            SchedulerRequest::CallDag {
                name,
                args,
                region,
                output_key,
                reply,
            } => {
                self.incoming_total += 1;
                *self.call_counts.entry(name.clone()).or_insert(0) += 1;
                let reply_slot = Arc::new(Mutex::ranked(50, "cb-reply-slot", reply));
                self.launch_dag(&name, Arc::new(args), region, output_key, reply_slot, 0);
            }
            SchedulerRequest::DagDone { request_id } => {
                self.pending.remove(&request_id);
            }
            SchedulerRequest::CacheKeyset { vm, keys } => {
                self.cached_keys.insert(vm, keys.into_iter().collect());
            }
            SchedulerRequest::PinFunction { function } => {
                // The monitor names either a function or a lagging DAG; for
                // a DAG, every constituent function gets another replica.
                if let Some(dag) = self.dags.get(&function).cloned() {
                    for node in &dag.nodes {
                        self.pin_one_more(&node.function);
                    }
                } else {
                    self.pin_one_more(&function);
                }
            }
            SchedulerRequest::TrimPins { function, target } => {
                let unpin: Vec<(ExecutorId, Address)> = {
                    let Some(list) = self.pins.get_mut(&function) else {
                        return false;
                    };
                    if list.len() <= target.max(1) {
                        return false;
                    }
                    let keep = target.max(1);
                    let dropped: Vec<ExecutorId> = list.split_off(keep);
                    dropped
                        .into_iter()
                        .filter_map(|id| self.topology.executor(id).map(|i| (id, i.addr)))
                        .collect()
                };
                // The pin set shrank: cached plans may reference the dropped
                // executors, so they all expire.
                self.sched_gen += 1;
                for (_, addr) in unpin {
                    let _ = self.endpoint.send(
                        addr,
                        ExecutorRequest::Unpin {
                            function: function.clone(),
                        },
                    );
                }
            }
            SchedulerRequest::Shutdown => return true,
        }
        false
    }

    fn register_dag(&mut self, spec: DagSpec) -> Result<(), DagError> {
        spec.validate()?;
        // "The scheduler verifies that each function in the DAG exists
        // before picking an executor on which to cache it" (§4.3) — one
        // coalesced lookup for the whole DAG instead of a get per function.
        let function_keys: Vec<Key> = spec
            .nodes
            .iter()
            .map(|node| mkeys::function_key(&node.function))
            .collect();
        for chunk_start in (0..function_keys.len()).step_by(self.config.kvs_batch_max_keys.max(1)) {
            let chunk_end =
                (chunk_start + self.config.kvs_batch_max_keys.max(1)).min(function_keys.len());
            // A failed lookup is an infrastructure error, not evidence the
            // functions are unregistered — surface it as such rather than
            // misreporting the whole chunk as unknown.
            let found = self
                .anna
                .multi_get(&function_keys[chunk_start..chunk_end])
                .map_err(|e| DagError::Storage(e.to_string()))?;
            for (offset, capsule) in found.iter().enumerate() {
                if capsule.is_none() {
                    return Err(DagError::UnknownFunction(
                        spec.nodes[chunk_start + offset].function.clone(),
                    ));
                }
            }
        }
        for node in &spec.nodes {
            for _ in 0..self.config.initial_pin_replicas {
                self.pin_one_more(&node.function);
            }
        }
        // DAG topologies are the scheduler's only persistent metadata (§4.3).
        let serialized = format!("{spec:?}");
        let _ = self
            .anna
            .put_lww(&mkeys::dag_key(&spec.name), Bytes::from(serialized));
        self.dags.insert(spec.name.clone(), Arc::new(spec));
        // A (re-)registration may replace a DAG under an existing name;
        // cached plans hold the *old* `Arc<DagSpec>` and must not survive
        // it. (The pins above bump the generation only when they actually
        // recruit a new executor, which a steady-state re-registration
        // doesn't.)
        self.sched_gen += 1;
        Ok(())
    }

    fn launch_dag(
        &mut self,
        name: &str,
        args: Arc<HashMap<usize, Vec<Arg>>>,
        region: u16,
        output_key: Option<Key>,
        reply_slot: Arc<Mutex<Option<ReplyHandle<InvocationResult>>>>,
        retries: u32,
    ) {
        let Some(dag) = self.dags.get(name).cloned() else {
            if let Some(reply) = reply_slot.lock().take() {
                reply.reply(InvocationResult::Err(format!("unknown DAG {name:?}")));
            }
            return;
        };
        let plan = match self.plan_for(name, &dag, &args, region) {
            Ok(plan) => plan,
            Err(message) => {
                if let Some(reply) = reply_slot.lock().take() {
                    reply.reply(InvocationResult::Err(message));
                }
                return;
            }
        };
        let request_id = NEXT_REQUEST.fetch_add(1, Ordering::Relaxed);
        let output = match &output_key {
            Some(key) => OutputTarget::Kvs(key.clone()),
            None => OutputTarget::Direct(Arc::clone(&reply_slot)),
        };
        let schedule = DagSchedule {
            request_id,
            attempt: retries,
            args: Arc::clone(&args),
            output,
            plan: Arc::clone(&plan),
        };
        self.pending.insert(
            request_id,
            PendingDag {
                name: name.to_string(),
                args,
                region,
                output_key,
                reply_slot,
                cache_addrs: plan.cache_addrs.clone(),
                // lint: allow(L003): DAG re-execution deadline (§4.5); timeouts are wall-clock by contract
                deadline: Instant::now()
                    + self
                        .endpoint
                        .network()
                        .time_scale()
                        .ms(self.config.dag_timeout_ms),
                retries,
            },
        );
        // Trigger the source functions (§4.3).
        for &source in &plan.sources {
            let mut session = SessionMeta::new(request_id, self.level);
            session.traced = self.trace_enabled;
            let trigger = DagTrigger {
                schedule: schedule.clone(),
                node: source,
                input: None,
                session,
            };
            let _ = self.endpoint.send(
                plan.assignments[source],
                ExecutorRequest::TriggerDag(Box::new(trigger)),
            );
        }
    }

    /// The execution plan for one `(DAG, reference-key set)` call: a cached
    /// plan when the scheduling generation and topology epoch are both
    /// unchanged since it was computed, otherwise the full §4.3 policy
    /// (one `pick_executor` per node), with the result cached for the next
    /// call. `Err` carries the client-facing failure message.
    fn plan_for(
        &mut self,
        name: &str,
        dag: &Arc<DagSpec>,
        args: &HashMap<usize, Vec<Arg>>,
        region: u16,
    ) -> Result<Arc<DagPlan>, String> {
        let key = PlanKey::new(name, args, region);
        let topo_epoch = self.topology.epoch();
        if let Some(entry) = self.plan_cache.get(&key) {
            if entry.sched_gen == self.sched_gen && entry.topo_epoch == topo_epoch {
                self.plan_hits += 1;
                return Ok(Arc::clone(&entry.plan));
            }
        }
        self.plan_misses += 1;
        // Pick an executor per node — "guaranteed to have the function
        // stored locally" via the pin set (§4.3).
        let mut assignments = Vec::with_capacity(dag.nodes.len());
        let mut vms = Vec::with_capacity(dag.nodes.len());
        for (idx, node) in dag.nodes.iter().enumerate() {
            let refs: Vec<Key> = args
                .get(&idx)
                .map(|list| {
                    list.iter()
                        .filter_map(|a| a.as_ref_key().cloned())
                        .collect()
                })
                .unwrap_or_default();
            match self.pick_executor(&node.function, &refs, region, true) {
                Some((id, addr)) => {
                    let vm = self.topology.executor(id).map(|i| i.vm).unwrap_or_default();
                    assignments.push(addr);
                    vms.push(vm);
                }
                None => {
                    return Err(format!("no executor available for {:?}", node.function));
                }
            }
        }
        let cache_addrs: Vec<Address> = vms
            .iter()
            .filter_map(|vm| self.topology.cache_of(*vm))
            .collect();
        let plan = Arc::new(DagPlan::new(
            Arc::clone(dag),
            assignments,
            vms,
            cache_addrs,
            self.endpoint.addr(),
        ));
        if self.config.plan_cache_max_entries > 0 {
            if self.plan_cache.len() >= self.config.plan_cache_max_entries {
                // Cheap whole-cache reset; stale-generation entries go with
                // it. A working set larger than the cap thrashes rather than
                // growing without bound.
                self.plan_cache.clear();
            }
            // The generation stamp is read *after* the picks: a
            // backpressure pin during `pick_executor` bumps it, and the
            // plan just computed already reflects the new pin. The topology
            // epoch is the one captured *before* the picks: the topology is
            // mutated by other threads (crash_vm), so an executor removed
            // mid-computation must leave this entry stamped stale — stamping
            // the post-pick epoch would mark a possibly-dead assignment
            // fresh.
            self.plan_cache.insert(
                key,
                CachedPlan {
                    plan: Arc::clone(&plan),
                    sched_gen: self.sched_gen,
                    topo_epoch,
                },
            );
        }
        Ok(plan)
    }

    /// The §4.3 scheduling policy, region-extended: prefer pinned executors
    /// with the most requested data cached on their VM; among equally
    /// covered executors prefer the caller's region (a WAN hop costs more
    /// than any intra-region rebalance gains); avoid overloaded executors;
    /// under backpressure, pin onto a fresh executor (raising the function's
    /// replication factor). Data locality strictly dominates the region
    /// term — a remote VM that already caches the inputs beats a local VM
    /// that would fetch them over the WAN anyway.
    fn pick_executor(
        &mut self,
        function: &str,
        ref_keys: &[Key],
        region: u16,
        allow_new_pin: bool,
    ) -> Option<(ExecutorId, Address)> {
        // Iterate the pinned list in place — the seed cloned the whole
        // `Vec<ExecutorId>` out of the map on every call.
        let live: Vec<Candidate> = self
            .pins
            .get(function)
            .into_iter()
            .flatten()
            .filter_map(|&id| {
                self.topology
                    .executor(id)
                    .map(|i| (id, i.addr, i.vm, i.region))
            })
            .collect();
        if live.is_empty() {
            return if allow_new_pin {
                self.pin_one_more(function)
            } else {
                None
            };
        }
        let underloaded: Vec<&Candidate> = live
            .iter()
            .filter(|(id, _, _, _)| {
                self.utilization.get(id).copied().unwrap_or(0.0) < self.config.high_util_threshold
            })
            .collect();
        if underloaded.is_empty() {
            // Backpressure: all replicas saturated → recruit a new executor,
            // which will fetch and cache the hot data (§4.3).
            if allow_new_pin {
                if let Some(found) = self.pin_one_more(function) {
                    return Some(found);
                }
            }
            let (id, addr, _, _) = live[self.rng.random_range(0..live.len())];
            return Some((id, addr));
        }
        if !ref_keys.is_empty() {
            // Data locality: most requested keys cached on the executor's VM,
            // caller-region preference as the secondary term. Ties at the
            // best (coverage, region) score break *randomly* — under equal
            // coverage (e.g. a hot key cached on every replica VM) a
            // deterministic winner would funnel all load onto one executor.
            let empty = HashSet::new();
            let scored: Vec<((usize, bool), &Candidate)> = underloaded
                .iter()
                .map(|entry| {
                    let cached = self.cached_keys.get(&entry.2).unwrap_or(&empty);
                    let score = ref_keys.iter().filter(|k| cached.contains(*k)).count();
                    ((score, entry.3 == region), *entry)
                })
                .collect();
            let best = scored.iter().map(|&(score, _)| score).max()?;
            if best.0 > 0 {
                let winners: Vec<&Candidate> = scored
                    .into_iter()
                    .filter_map(|(score, entry)| (score == best).then_some(entry))
                    .collect();
                let (id, addr, _, _) = **winners.choose(&mut self.rng)?;
                return Some((id, addr));
            }
        }
        // No coverage anywhere (or no refs): stay in the caller's region when
        // it has an underloaded replica, spreading randomly within it.
        let local: Vec<&&Candidate> = underloaded
            .iter()
            .filter(|(_, _, _, r)| *r == region)
            .collect();
        if let Some(entry) = local.choose(&mut self.rng) {
            let (id, addr, _, _) = ***entry;
            return Some((id, addr));
        }
        let (id, addr, _, _) = **underloaded.choose(&mut self.rng)?;
        Some((id, addr))
    }

    /// Pin `function` on one more executor that does not already have it.
    fn pin_one_more(&mut self, function: &str) -> Option<(ExecutorId, Address)> {
        let pinned: HashSet<ExecutorId> = self
            .pins
            .get(function)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();
        let candidates: Vec<(ExecutorId, Address)> = self
            .topology
            .executors()
            .into_iter()
            .filter(|(id, _)| !pinned.contains(id))
            .map(|(id, info)| (id, info.addr))
            .collect();
        let &(id, addr) = candidates.choose(&mut self.rng)?;
        let _ = self.endpoint.send(
            addr,
            ExecutorRequest::Pin {
                function: function.to_string(),
            },
        );
        self.pins.entry(function.to_string()).or_default().push(id);
        // The pin set changed: cached plans no longer reflect the policy's
        // candidate set, so they all expire.
        self.sched_gen += 1;
        Some((id, addr))
    }

    /// Refresh executor utilization from the metrics they publish to Anna
    /// (§4.3/§4.4). Also prune pins onto executors that have disappeared.
    /// One coalesced `multi_get` per chunk of executors replaces the per-
    /// executor request storm the refresh tick used to generate.
    fn refresh_metrics(&mut self) {
        // Fresh metrics may change every load-aware decision; cached plans
        // computed under the old view expire wholesale.
        self.sched_gen += 1;
        let executors = self.topology.executors();
        let live: HashSet<ExecutorId> = executors.iter().map(|&(id, _)| id).collect();
        for pins in self.pins.values_mut() {
            pins.retain(|id| live.contains(id));
        }
        // Drop state for executors and VMs that left the topology (crash or
        // scale-down): a dead executor's last reported load must not keep
        // attracting picks, and a dead VM's cached-keyset must not keep
        // winning locality ties.
        self.utilization.retain(|id, _| live.contains(id));
        let live_vms: HashSet<VmId> = self
            .topology
            .caches()
            .into_iter()
            .map(|(vm, _)| vm)
            .collect();
        self.cached_keys.retain(|vm, _| live_vms.contains(vm));
        let ids: Vec<ExecutorId> = executors.into_iter().map(|(id, _)| id).collect();
        for chunk in ids.chunks(self.config.kvs_batch_max_keys.max(1)) {
            let keys: Vec<Key> = chunk
                .iter()
                .map(|&id| mkeys::executor_metrics_key(id))
                .collect();
            // Lenient: one dead storage node must not blank the whole
            // chunk's utilization view — healthy nodes' responses count.
            let results = self.anna.multi_get_lenient(&keys);
            for (&id, capsule) in chunk.iter().zip(results) {
                let Some(capsule) = capsule else { continue };
                for (name, value) in mkeys::decode_metrics(&capsule.read_value()) {
                    if name == "utilization" {
                        self.utilization.insert(id, value);
                    }
                }
            }
        }
    }

    /// Whole-DAG re-execution after a configurable timeout (§4.5).
    fn check_timeouts(&mut self) {
        // lint: allow(L003): deadline comparison for the DAG timeout above
        let now = Instant::now();
        let expired: Vec<RequestId> = self
            .pending
            .iter()
            .filter_map(|(&id, p)| (p.deadline <= now).then_some(id))
            .collect();
        for request_id in expired {
            let Some(p) = self.pending.remove(&request_id) else {
                continue;
            };
            // Evict stale snapshots of the abandoned attempt.
            for &cache in &p.cache_addrs {
                let _ = self
                    .endpoint
                    .send(cache, CacheRequest::SessionComplete { request_id });
            }
            if p.retries >= self.config.max_retries {
                if let Some(reply) = p.reply_slot.lock().take() {
                    reply.reply(InvocationResult::Err(format!(
                        "DAG {:?} failed after {} attempts",
                        p.name,
                        p.retries + 1
                    )));
                }
                continue;
            }
            self.launch_dag(
                &p.name,
                p.args,
                p.region,
                p.output_key,
                p.reply_slot,
                p.retries + 1,
            );
        }
    }

    /// Publish per-DAG call counts to the KVS (§4.3), read by the monitor.
    fn publish_stats(&self) {
        let mut pairs: Vec<(String, f64)> = self
            .call_counts
            .iter()
            .map(|(name, count)| (format!("calls:{name}"), *count as f64))
            .collect();
        pairs.push(("incoming_total".to_string(), self.incoming_total as f64));
        pairs.push(("plan_hits".to_string(), self.plan_hits as f64));
        pairs.push(("plan_misses".to_string(), self.plan_misses as f64));
        let _ = self.anna.put_lww(
            &mkeys::scheduler_stats_key(self.id),
            mkeys::encode_metrics(&pairs),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_anna::Directory;
    use cloudburst_net::{Network, NetworkConfig};

    /// A scheduler worker wired to a real network but no live peers: Pin
    /// messages it sends are received by leaked endpoints and dropped, which
    /// is exactly what the §4.3 policy tests need — `pick_executor` never
    /// waits on a peer.
    fn test_worker(net: &Network, topology: Arc<Topology>) -> Worker {
        // No storage nodes: `pick_executor` never touches Anna.
        let anna = AnnaClient::new(net, Arc::new(Directory::new(1)));
        test_worker_with_anna(net, topology, anna)
    }

    fn test_worker_with_anna(net: &Network, topology: Arc<Topology>, anna: AnnaClient) -> Worker {
        Worker {
            id: 0,
            endpoint: net.register(),
            topology,
            anna,
            level: ConsistencyLevel::Lww,
            config: SchedulerConfig::default(),
            trace_enabled: false,
            dags: HashMap::new(),
            pins: HashMap::new(),
            utilization: HashMap::new(),
            cached_keys: HashMap::new(),
            pending: HashMap::new(),
            call_counts: HashMap::new(),
            incoming_total: 0,
            plan_cache: HashMap::new(),
            sched_gen: 0,
            plan_hits: 0,
            plan_misses: 0,
            rng: StdRng::seed_from_u64(7),
            tick: Duration::from_millis(100),
            // lint: allow(L003): test worker never runs on the runtime; field is inert
            next_refresh: Instant::now() + Duration::from_millis(100),
        }
    }

    /// Register `n` executors (one per VM) as pinned replicas of `f`.
    fn pin_executors(net: &Network, worker: &mut Worker, n: u64) -> Vec<Address> {
        let mut addrs = Vec::new();
        for id in 0..n {
            let ep = net.register();
            let addr = ep.addr();
            std::mem::forget(ep);
            worker.topology.add_executor(id, addr, id, 0);
            worker.pins.entry("f".to_string()).or_default().push(id);
            addrs.push(addr);
        }
        addrs
    }

    #[test]
    fn locality_prefers_executor_with_most_cached_keys() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        let refs: Vec<Key> = (0..3).map(|i| Key::new(format!("r{i}"))).collect();
        // VM 1 caches one requested key, VM 2 caches all three.
        worker
            .cached_keys
            .insert(1, refs.iter().take(1).cloned().collect());
        worker.cached_keys.insert(2, refs.iter().cloned().collect());
        for _ in 0..20 {
            let (id, _) = worker.pick_executor("f", &refs, 0, false).unwrap();
            assert_eq!(id, 2, "most-cached-keys executor must win every time");
        }
    }

    #[test]
    fn overloaded_executors_are_avoided() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        let refs = vec![Key::new("hotref")];
        // Executor 2 has perfect locality but is saturated; 0 and 1 are idle.
        worker.cached_keys.insert(2, refs.iter().cloned().collect());
        worker.utilization.insert(2, 0.95);
        for _ in 0..20 {
            let (id, _) = worker.pick_executor("f", &refs, 0, false).unwrap();
            assert_ne!(
                id, 2,
                "overloaded executor must be skipped despite locality"
            );
        }
    }

    #[test]
    fn all_saturated_without_new_pin_falls_back_to_random_live_replica() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 2);
        worker.utilization.insert(0, 0.9);
        worker.utilization.insert(1, 0.9);
        let picked = worker.pick_executor("f", &[], 0, false);
        assert!(
            picked.is_some(),
            "saturation must degrade to serving, not reject"
        );
    }

    #[test]
    fn backpressure_recruits_a_new_executor_when_allowed() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 2);
        // A third executor exists but is not pinned yet.
        let ep = net.register();
        topo.add_executor(99, ep.addr(), 99, 0);
        std::mem::forget(ep);
        worker.utilization.insert(0, 0.9);
        worker.utilization.insert(1, 0.9);
        let (id, _) = worker.pick_executor("f", &[], 0, true).unwrap();
        assert_eq!(id, 99, "backpressure must raise the replication factor");
        assert!(worker.pins["f"].contains(&99), "new pin must be recorded");
    }

    #[test]
    fn equal_cache_coverage_breaks_ties_randomly() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        let refs = vec![Key::new("shared")];
        // Every VM caches the requested key: coverage ties at 1 everywhere.
        // The tie must not pin to a fixed executor, or a hot key replicated
        // onto every VM would funnel all its load to one thread.
        for vm in 0..3 {
            worker
                .cached_keys
                .insert(vm, refs.iter().cloned().collect());
        }
        let mut seen: HashSet<ExecutorId> = HashSet::new();
        for _ in 0..64 {
            let (id, _) = worker.pick_executor("f", &refs, 0, false).unwrap();
            seen.insert(id);
        }
        assert!(
            seen.len() > 1,
            "equal-coverage ties must spread load across replicas, got {seen:?}"
        );
    }

    #[test]
    fn zero_coverage_spreads_load_randomly() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        let refs = vec![Key::new("uncached")];
        let mut seen: HashSet<ExecutorId> = HashSet::new();
        for _ in 0..64 {
            let (id, _) = worker.pick_executor("f", &refs, 0, false).unwrap();
            seen.insert(id);
        }
        assert!(
            seen.len() > 1,
            "zero-coverage picks must spread load across replicas, got {seen:?}"
        );
    }

    #[test]
    fn unpinned_function_without_new_pins_yields_none() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, topo);
        assert!(worker.pick_executor("ghost", &[], 0, false).is_none());
    }

    #[test]
    fn pick_executor_never_selects_executor_gone_from_topology() {
        // Regression (PR 3 satellite): after `crash_vm` removes executors
        // from the topology, a pinned-but-dead executor must be unselectable
        // immediately — not only after the next metrics refresh.
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        topo.remove_executor(1); // VM crash removes it from the topology
        for _ in 0..64 {
            let (id, _) = worker.pick_executor("f", &[], 0, false).unwrap();
            assert_ne!(id, 1, "dead executor must never be picked");
        }
    }

    /// Register `n` executors (one per VM) pinned on `f`, with VM `i` in
    /// region `i` — one replica per region.
    fn pin_executors_across_regions(net: &Network, worker: &mut Worker, n: u64) {
        for id in 0..n {
            let ep = net.register();
            let addr = ep.addr();
            std::mem::forget(ep);
            worker.topology.add_executor(id, addr, id, id as u16);
            worker.pins.entry("f".to_string()).or_default().push(id);
        }
    }

    #[test]
    fn caller_region_wins_when_no_data_is_cached() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors_across_regions(&net, &mut worker, 3);
        // No cached coverage anywhere: the caller's region must decide, for
        // ref-carrying and ref-free calls alike.
        for _ in 0..20 {
            let (id, _) = worker.pick_executor("f", &[], 2, false).unwrap();
            assert_eq!(id, 2, "ref-free call must stay in the caller's region");
            let (id, _) = worker
                .pick_executor("f", &[Key::new("uncached")], 1, false)
                .unwrap();
            assert_eq!(id, 1, "zero-coverage call must stay in the caller's region");
        }
    }

    #[test]
    fn cached_data_beats_the_caller_region() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors_across_regions(&net, &mut worker, 3);
        let refs = vec![Key::new("hotref")];
        // Only the region-0 VM caches the input; a caller in region 2 must
        // still be routed there — shipping the function to the data is
        // cheaper than refetching the data over the WAN.
        worker.cached_keys.insert(0, refs.iter().cloned().collect());
        for _ in 0..20 {
            let (id, _) = worker.pick_executor("f", &refs, 2, false).unwrap();
            assert_eq!(id, 0, "data locality must dominate the region term");
        }
    }

    #[test]
    fn equal_coverage_ties_break_toward_the_caller_region() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors_across_regions(&net, &mut worker, 3);
        let refs = vec![Key::new("shared")];
        // Every VM caches the key: coverage ties, so the region term decides.
        for vm in 0..3 {
            worker
                .cached_keys
                .insert(vm, refs.iter().cloned().collect());
        }
        for caller in 0..3u16 {
            let (id, _) = worker.pick_executor("f", &refs, caller, false).unwrap();
            assert_eq!(id as u16, caller, "coverage tie must resolve locally");
        }
    }

    #[test]
    fn plan_cache_keys_on_caller_region() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors_across_regions(&net, &mut worker, 2);
        let dag = Arc::new(DagSpec::linear("d", &["f"]));
        worker.dags.insert("d".to_string(), Arc::clone(&dag));
        let args = HashMap::new();
        let a = worker.plan_for("d", &dag, &args, 0).unwrap();
        let b = worker.plan_for("d", &dag, &args, 1).unwrap();
        assert!(
            !Arc::ptr_eq(&a, &b),
            "callers in different regions are different placement decisions"
        );
        // Same region hits the cached entry.
        let c = worker.plan_for("d", &dag, &args, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    /// Register a one-node DAG over the pinned function `f`.
    fn register_chain(worker: &mut Worker) -> Arc<DagSpec> {
        let dag = Arc::new(DagSpec::linear("d", &["f"]));
        worker.dags.insert("d".to_string(), Arc::clone(&dag));
        dag
    }

    #[test]
    fn plan_cache_reuses_assignment_across_calls() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        let dag = register_chain(&mut worker);
        let args = HashMap::from([(0usize, vec![Arg::reference("r")])]);
        let first = worker.plan_for("d", &dag, &args, 0).unwrap();
        let second = worker.plan_for("d", &dag, &args, 0).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "back-to-back calls must share one plan"
        );
        assert_eq!((worker.plan_hits, worker.plan_misses), (1, 1));
    }

    #[test]
    fn plan_cache_keys_on_ref_set() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        let dag = register_chain(&mut worker);
        let with_ref = HashMap::from([(0usize, vec![Arg::reference("r")])]);
        let without = HashMap::new();
        let a = worker.plan_for("d", &dag, &with_ref, 0).unwrap();
        let b = worker.plan_for("d", &dag, &without, 0).unwrap();
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different ref-key sets are different placement decisions"
        );
        // Value-only argument changes hit the same entry: values never
        // steer placement, only refs do.
        let value_args = HashMap::from([(0usize, vec![Arg::value(Bytes::from_static(b"x"))])]);
        let c = worker.plan_for("d", &dag, &value_args, 0).unwrap();
        assert!(Arc::ptr_eq(&b, &c));
    }

    #[test]
    fn plan_cache_invalidated_by_metric_refresh() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        let dag = register_chain(&mut worker);
        let args = HashMap::new();
        let before = worker.plan_for("d", &dag, &args, 0).unwrap();
        // No storage nodes: the refresh reads nothing, but fresh metrics
        // must still drop every cached plan.
        worker.refresh_metrics();
        let after = worker.plan_for("d", &dag, &args, 0).unwrap();
        assert!(
            !Arc::ptr_eq(&before, &after),
            "metric refresh must invalidate cached plans"
        );
    }

    #[test]
    fn plan_cache_invalidated_by_pin_changes() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        let dag = register_chain(&mut worker);
        let args = HashMap::new();
        let before = worker.plan_for("d", &dag, &args, 0).unwrap();
        // Scale-down: trimming to 1 replica unpins executors that a cached
        // plan may still reference.
        worker.handle(SchedulerRequest::TrimPins {
            function: "f".to_string(),
            target: 1,
        });
        let after = worker.plan_for("d", &dag, &args, 0).unwrap();
        assert!(
            !Arc::ptr_eq(&before, &after),
            "unpin must invalidate cached plans"
        );
        // Scale-up (a fresh pin) invalidates as well.
        let ep = net.register();
        topo.add_executor(50, ep.addr(), 50, 0);
        std::mem::forget(ep);
        let mid = worker.plan_for("d", &dag, &args, 0).unwrap();
        worker.pin_one_more("f").unwrap();
        let post_pin = worker.plan_for("d", &dag, &args, 0).unwrap();
        assert!(!Arc::ptr_eq(&mid, &post_pin));
    }

    #[test]
    fn plan_cache_invalidated_by_dag_reregistration() {
        // Re-registering a DAG under an existing name replaces its spec;
        // a cached plan still holding the old `Arc<DagSpec>` must not be
        // served afterwards — even when registration pins nothing new
        // (every executor already has the functions, the steady state).
        use cloudburst_anna::{AnnaCluster, AnnaConfig};
        let net = Network::new(NetworkConfig::instant());
        let anna = AnnaCluster::launch(
            &net,
            AnnaConfig {
                nodes: 1,
                replication: 1,
                durability: cloudburst_anna::Durability::Off,
                ..AnnaConfig::default()
            },
        );
        let client = anna.client();
        client
            .put_lww(&mkeys::function_key("f"), Bytes::from_static(b"registered"))
            .unwrap();
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker_with_anna(&net, Arc::clone(&topo), anna.client());
        pin_executors(&net, &mut worker, 3);
        worker.register_dag(DagSpec::linear("d", &["f"])).unwrap();
        let args = HashMap::new();
        let dag_v1 = Arc::clone(&worker.dags["d"]);
        let before = worker.plan_for("d", &dag_v1, &args, 0).unwrap();
        // Same name, new spec (two nodes now). All executors are already
        // pinned with "f", so registration recruits nothing.
        worker
            .register_dag(DagSpec::linear("d", &["f", "f"]))
            .unwrap();
        let dag_v2 = Arc::clone(&worker.dags["d"]);
        assert!(!Arc::ptr_eq(&dag_v1, &dag_v2), "spec must be replaced");
        let after = worker.plan_for("d", &dag_v2, &args, 0).unwrap();
        assert!(
            !Arc::ptr_eq(&before, &after),
            "re-registration must invalidate cached plans"
        );
        assert!(
            Arc::ptr_eq(&after.dag, &dag_v2),
            "fresh plan must carry the new spec"
        );
    }

    #[test]
    fn plan_cache_never_hands_schedule_to_dead_executor() {
        // Regression for the crash_vm path: a topology change must
        // immediately invalidate cached plans, even between metric
        // refreshes — a cached assignment must never reach an executor
        // that left the topology.
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 3);
        let dag = register_chain(&mut worker);
        let args = HashMap::new();
        let before = worker.plan_for("d", &dag, &args, 0).unwrap();
        let victim = worker
            .topology
            .executors()
            .iter()
            .find(|(_, info)| info.addr == before.assignments[0])
            .map(|&(id, _)| id)
            .expect("assigned executor is in the topology");
        let dead_addr = before.assignments[0];
        topo.remove_executor(victim); // what crash_vm does per executor
        for _ in 0..32 {
            let plan = worker.plan_for("d", &dag, &args, 0).unwrap();
            assert!(
                !plan.assignments.contains(&dead_addr),
                "cached plan outlived the executor it targets"
            );
        }
    }

    #[test]
    fn plan_cache_disabled_recomputes_every_call() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        worker.config.plan_cache_max_entries = 0;
        pin_executors(&net, &mut worker, 3);
        let dag = register_chain(&mut worker);
        let args = HashMap::new();
        let a = worker.plan_for("d", &dag, &args, 0).unwrap();
        let b = worker.plan_for("d", &dag, &args, 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(worker.plan_hits, 0);
    }

    #[test]
    fn refresh_prunes_stale_utilization_and_cached_keysets() {
        // Stale per-executor load and per-VM cached-keyset state for
        // topology members that no longer exist must be dropped on refresh,
        // or a dead executor's last reported load (and a dead VM's locality
        // weight) would keep steering scheduling decisions forever.
        let net = Network::new(NetworkConfig::instant());
        let topo = Arc::new(Topology::new());
        let mut worker = test_worker(&net, Arc::clone(&topo));
        pin_executors(&net, &mut worker, 2); // executors 0, 1 on VMs 0, 1
        let cache = net.register();
        topo.add_cache(0, cache.addr());
        std::mem::forget(cache);
        worker.utilization.insert(0, 0.5);
        worker.utilization.insert(1, 0.6);
        worker.utilization.insert(99, 0.9); // never existed / long gone
        worker.cached_keys.insert(0, HashSet::from([Key::new("a")]));
        worker
            .cached_keys
            .insert(42, HashSet::from([Key::new("b")])); // dead VM
        topo.remove_executor(1); // crashed mid-window
        worker.refresh_metrics();
        assert_eq!(
            worker.utilization.keys().copied().collect::<Vec<_>>(),
            vec![0],
            "only live executors keep utilization entries"
        );
        assert!(worker.cached_keys.contains_key(&0));
        assert!(
            !worker.cached_keys.contains_key(&42),
            "cached keysets of VMs without a live cache must be pruned"
        );
    }
}

//! Tiny value codecs used by examples, applications, and benchmarks.
//!
//! User values in Cloudburst are opaque bytes (Python pickles in the paper).
//! These helpers give the Rust examples a fixed, dependency-free encoding for
//! the primitive types they pass through functions.

use bytes::{BufMut, Bytes, BytesMut};

/// Encode an `i64` (little-endian).
pub fn encode_i64(x: i64) -> Bytes {
    Bytes::copy_from_slice(&x.to_le_bytes())
}

/// Decode an `i64`; `None` if the payload is not exactly 8 bytes.
pub fn decode_i64(b: &Bytes) -> Option<i64> {
    Some(i64::from_le_bytes(b.as_ref().try_into().ok()?))
}

/// Encode an `f64` (little-endian bit pattern).
pub fn encode_f64(x: f64) -> Bytes {
    Bytes::copy_from_slice(&x.to_le_bytes())
}

/// Decode an `f64`; `None` if the payload is not exactly 8 bytes.
pub fn decode_f64(b: &Bytes) -> Option<f64> {
    Some(f64::from_le_bytes(b.as_ref().try_into().ok()?))
}

/// Encode a UTF-8 string.
pub fn encode_str(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// Decode a UTF-8 string; `None` on invalid UTF-8.
pub fn decode_str(b: &Bytes) -> Option<String> {
    String::from_utf8(b.to_vec()).ok()
}

/// Encode a slice of `f64`s (length-prefixed little-endian), used for the
/// array workloads of §6.1.2.
pub fn encode_f64_slice(xs: &[f64]) -> Bytes {
    let mut out = BytesMut::with_capacity(8 + xs.len() * 8);
    out.put_u64_le(xs.len() as u64);
    for &x in xs {
        out.put_f64_le(x);
    }
    out.freeze()
}

/// Decode a slice of `f64`s; `None` on malformed input.
pub fn decode_f64_slice(b: &Bytes) -> Option<Vec<f64>> {
    if b.len() < 8 {
        return None;
    }
    let n = u64::from_le_bytes(b[..8].try_into().ok()?) as usize;
    if b.len() != 8 + n * 8 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let start = 8 + i * 8;
        out.push(f64::from_le_bytes(b[start..start + 8].try_into().ok()?));
    }
    Some(out)
}

/// Frame a direct message with `(sender, sequence)` so inbox redeliveries
/// can be deduplicated (inboxes are grow-only sets, §3).
pub fn encode_message(sender: u64, seq: u64, payload: &Bytes) -> Bytes {
    let mut out = BytesMut::with_capacity(16 + payload.len());
    out.put_u64_le(sender);
    out.put_u64_le(seq);
    out.extend_from_slice(payload);
    out.freeze()
}

/// Unframe a direct message; `None` on malformed input.
pub fn decode_message(b: &Bytes) -> Option<(u64, u64, Bytes)> {
    if b.len() < 16 {
        return None;
    }
    let sender = u64::from_le_bytes(b[..8].try_into().ok()?);
    let seq = u64::from_le_bytes(b[8..16].try_into().ok()?);
    Some((sender, seq, b.slice(16..)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_roundtrip() {
        for x in [0, 1, -1, i64::MAX, i64::MIN, 42] {
            assert_eq!(decode_i64(&encode_i64(x)), Some(x));
        }
        assert_eq!(decode_i64(&Bytes::from_static(b"short")), None);
    }

    #[test]
    fn f64_roundtrip() {
        for x in [0.0, -1.5, f64::MAX, std::f64::consts::PI] {
            assert_eq!(decode_f64(&encode_f64(x)), Some(x));
        }
    }

    #[test]
    fn str_roundtrip() {
        assert_eq!(decode_str(&encode_str("héllo")), Some("héllo".into()));
        assert_eq!(decode_str(&Bytes::from_static(&[0xff])), None);
    }

    #[test]
    fn f64_slice_roundtrip() {
        let xs = vec![1.0, 2.5, -3.75];
        assert_eq!(decode_f64_slice(&encode_f64_slice(&xs)), Some(xs));
        assert_eq!(decode_f64_slice(&encode_f64_slice(&[])), Some(vec![]));
        assert_eq!(decode_f64_slice(&Bytes::from_static(b"bad")), None);
        // Length prefix that disagrees with the payload size.
        let mut broken = BytesMut::new();
        broken.put_u64_le(9);
        broken.put_f64_le(1.0);
        assert_eq!(decode_f64_slice(&broken.freeze()), None);
    }

    #[test]
    fn message_roundtrip() {
        let payload = Bytes::from_static(b"gossip");
        let framed = encode_message(3, 17, &payload);
        assert_eq!(decode_message(&framed), Some((3, 17, payload)));
        assert_eq!(decode_message(&Bytes::from_static(b"tiny")), None);
    }
}

//! The monitoring and resource-management engine (paper §4.4).
//!
//! Each executor publishes metrics to Anna; the monitor "asynchronously
//! aggregates these metrics from storage and uses them for its policy
//! engine": pin functions onto more executors when request rates outpace
//! completions, add VMs when CPU utilization exceeds 70 %, and deallocate
//! below 20 %. New VM allocation pays a simulated EC2 spin-up delay, which is
//! what produces the throughput plateaus of Figure 7.
//!
//! The sizing policy itself is one instance of the tier-agnostic
//! [`ScalingLoop`] from `cloudburst_anna::elastic` — the storage tier's
//! autoscaler is the other — and both record into a shared
//! [`ScaleTimeline`], so one deployment has a single interleaved
//! [`ScaleSample`] series across tiers. Scale-down picks the
//! *least-utilized* VM from the latest metrics refresh, never an arbitrary
//! one (killing a loaded VM would re-execute its in-flight DAGs for
//! nothing).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use cloudburst_anna::elastic::{ScaleDecision, ScalingConfig, ScalingLoop};
pub use cloudburst_anna::elastic::{ScaleSample, ScaleTier, ScaleTimeline};
use cloudburst_anna::metrics as mkeys;
use cloudburst_anna::AnnaClient;
use cloudburst_net::Network;

use crate::scheduler::SchedulerRequest;
use crate::topology::Topology;
use crate::types::VmId;

/// The compute-tier scaling interface the monitor drives. Implemented by
/// `CloudburstCluster` (which actually spawns/retires VM threads). The
/// storage-tier counterpart is `cloudburst_anna::elastic::StorageScaler`;
/// both are driven by the same [`ScalingLoop`].
pub trait ComputeScaler: Send + Sync + 'static {
    /// Allocate one VM (executors + cache) and return its ID.
    fn add_vm(&self) -> VmId;
    /// Deallocate a VM; returns `false` if it no longer exists.
    fn remove_vm(&self, vm: VmId) -> bool;
    /// IDs of currently running VMs.
    fn vm_ids(&self) -> Vec<VmId>;
}

/// Monitor policy configuration (thresholds from §4.4).
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Policy evaluation interval, in paper milliseconds.
    pub tick_ms: f64,
    /// Add nodes above this average utilization (0.7 in the paper).
    pub high_utilization: f64,
    /// Remove nodes below this average utilization (0.2 in the paper).
    pub low_utilization: f64,
    /// Simulated EC2 instance spin-up delay, in paper milliseconds
    /// (≈2.5 min in the paper).
    pub vm_spinup_ms: f64,
    /// VMs added per scale-up decision (the paper adds batches of 20).
    pub vms_per_scaleup: usize,
    /// Lower bound on cluster size.
    pub min_vms: usize,
    /// Upper bound on cluster size.
    pub max_vms: usize,
    /// Pin a lagging DAG's functions onto more executors when the incoming
    /// rate exceeds completions by this factor.
    pub backlog_factor: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            tick_ms: 250.0,
            high_utilization: 0.7,
            low_utilization: 0.2,
            vm_spinup_ms: 150_000.0,
            vms_per_scaleup: 4,
            min_vms: 1,
            max_vms: 64,
            backlog_factor: 1.2,
        }
    }
}

impl MonitorConfig {
    /// This policy as a [`ScalingLoop`] configuration (the generalized
    /// loop shared with the storage tier). The paper's compute policy
    /// reacts on a single out-of-band sample, so both hysteresis widths
    /// are one tick.
    fn scaling(&self) -> ScalingConfig {
        ScalingConfig {
            high: self.high_utilization,
            low: self.low_utilization,
            min_units: self.min_vms,
            max_units: self.max_vms,
            units_per_scaleup: self.vms_per_scaleup,
            up_ticks: 1,
            down_ticks: 1,
        }
    }
}

/// Handle to the running monitor.
pub struct MonitorHandle {
    shutdown: Arc<AtomicBool>,
    timeline: Arc<ScaleTimeline>,
    pending_vms: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl MonitorHandle {
    /// Spawn the monitoring engine, recording its samples into `timeline`
    /// (share one timeline with the storage elasticity engine to get the
    /// combined cross-tier series).
    pub fn spawn(
        net: Network,
        anna: AnnaClient,
        topology: Arc<Topology>,
        scaler: Arc<dyn ComputeScaler>,
        timeline: Arc<ScaleTimeline>,
        config: MonitorConfig,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let pending_vms = Arc::new(AtomicU64::new(0));
        let worker = Worker {
            net,
            anna,
            topology,
            scaler,
            config,
            scaling: ScalingLoop::new(config.scaling()),
            shutdown: Arc::clone(&shutdown),
            timeline: Arc::clone(&timeline),
            pending_vms: Arc::clone(&pending_vms),
            last_completed: 0.0,
            last_incoming: 0.0,
            // lint: allow(L003): autoscaler rate-sampling origin; wall-clock pacing is this loop's substrate
            last_sample: std::time::Instant::now(),
        };
        // lint: allow(L006): singleton control loop that blocks on wall-clock sleeps; one thread per cluster, never scales with actors
        let handle = std::thread::Builder::new()
            .name("cb-monitor".into())
            .spawn(move || worker.run())
            .expect("spawn monitor");
        Self {
            shutdown,
            timeline,
            pending_vms,
            handle: Some(handle),
        }
    }

    /// The autoscaling timeline collected so far (every tier recording
    /// into the shared timeline; filter on [`ScaleSample::tier`] for one
    /// tier's series).
    pub fn history(&self) -> Vec<ScaleSample> {
        self.timeline.samples()
    }

    /// The shared timeline handle.
    pub fn timeline(&self) -> Arc<ScaleTimeline> {
        Arc::clone(&self.timeline)
    }

    /// VMs currently being spun up (allocated but not yet serving).
    pub fn pending_vms(&self) -> u64 {
        self.pending_vms.load(Ordering::Relaxed)
    }

    /// Stop the monitor.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Worker {
    net: Network,
    anna: AnnaClient,
    topology: Arc<Topology>,
    scaler: Arc<dyn ComputeScaler>,
    config: MonitorConfig,
    scaling: ScalingLoop,
    shutdown: Arc<AtomicBool>,
    timeline: Arc<ScaleTimeline>,
    pending_vms: Arc<AtomicU64>,
    last_completed: f64,
    last_incoming: f64,
    last_sample: std::time::Instant,
}

impl Worker {
    fn run(mut self) {
        let tick = self
            .net
            .time_scale()
            .ms(self.config.tick_ms)
            .max(std::time::Duration::from_millis(1));
        while !self.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(tick);
            self.evaluate();
        }
    }

    fn evaluate(&mut self) {
        let executors = self.topology.executors();
        // Aggregate executor metrics from Anna (§4.4), keeping the per-VM
        // breakdown the scale-down victim choice needs.
        let mut total_util = 0.0;
        let mut util_count = 0usize;
        let mut completed_total = 0.0;
        let mut vm_util: HashMap<VmId, (f64, usize)> = HashMap::new();
        for (id, info) in &executors {
            if let Ok(Some(capsule)) = self.anna.get(&mkeys::executor_metrics_key(*id)) {
                for (name, value) in mkeys::decode_metrics(&capsule.read_value()) {
                    match name.as_str() {
                        "utilization" => {
                            total_util += value;
                            util_count += 1;
                            let slot = vm_util.entry(info.vm).or_insert((0.0, 0));
                            slot.0 += value;
                            slot.1 += 1;
                        }
                        "completed" => completed_total += value,
                        _ => {}
                    }
                }
            }
        }
        let avg_util = if util_count == 0 {
            0.0
        } else {
            total_util / util_count as f64
        };

        // Scheduler-side incoming counts.
        let mut incoming_total = 0.0;
        let mut lagging_dags: Vec<String> = Vec::new();
        for sid in 0..self.topology.schedulers().len() as u64 {
            if let Ok(Some(capsule)) = self.anna.get(&mkeys::scheduler_stats_key(sid)) {
                for (name, value) in mkeys::decode_metrics(&capsule.read_value()) {
                    if name == "incoming_total" {
                        incoming_total += value;
                    } else if let Some(dag) = name.strip_prefix("calls:") {
                        lagging_dags.push(dag.to_string());
                    }
                }
            }
        }

        // Timeline sample.
        // lint: allow(L003): measures real elapsed time for rates; the metric is the output, not control flow
        let now = std::time::Instant::now();
        let dt = now.duration_since(self.last_sample).as_secs_f64().max(1e-9);
        let throughput = (completed_total - self.last_completed).max(0.0) / dt;
        let incoming_rate = (incoming_total - self.last_incoming).max(0.0) / dt;
        self.last_completed = completed_total;
        self.last_incoming = incoming_total;
        self.last_sample = now;
        self.timeline.record(ScaleSample {
            tier: ScaleTier::Compute,
            at_secs: self.timeline.elapsed_secs(),
            throughput,
            load: avg_util,
            units: self.scaler.vm_ids().len(),
            sub_units: executors.len(),
        });

        // Policy 1: function backlog → pin onto more executors (§4.4).
        if incoming_rate > throughput * self.config.backlog_factor && incoming_rate > 0.0 {
            if let Some(&scheduler) = self.topology.schedulers().first() {
                for dag in lagging_dags {
                    let _ = self.net.send(
                        scheduler,
                        scheduler,
                        SchedulerRequest::PinFunction { function: dag },
                    );
                }
            }
        }

        // Policy 2: cluster sizing on average utilization (§4.4), decided
        // by the generalized scaling loop.
        let vms_now = self.scaler.vm_ids().len();
        let pending = self.pending_vms.load(Ordering::Relaxed) as usize;
        match self.scaling.observe(avg_util, vms_now, pending) {
            ScaleDecision::Hold => {}
            ScaleDecision::Up(n) => {
                for _ in 0..n {
                    self.spawn_vm_after_boot();
                }
            }
            ScaleDecision::Down => {
                let ids = self.scaler.vm_ids();
                if let Some(victim) = least_utilized_vm(&ids, &vm_util) {
                    self.scaler.remove_vm(victim);
                }
            }
        }
    }

    /// Allocate a VM after the simulated EC2 boot delay — "we are mostly
    /// limited by the high cost of spinning up new EC2 instances" (§6.1.4).
    fn spawn_vm_after_boot(&self) {
        let boot = self.net.time_scale().ms(self.config.vm_spinup_ms);
        let scaler = Arc::clone(&self.scaler);
        let pending = Arc::clone(&self.pending_vms);
        let shutdown = Arc::clone(&self.shutdown);
        pending.fetch_add(1, Ordering::Relaxed);
        // lint: allow(L006): models the EC2 boot delay with a real sleep; parking it on the pool would stall a worker for seconds
        std::thread::Builder::new()
            .name("cb-vm-boot".into())
            .spawn(move || {
                std::thread::sleep(boot);
                pending.fetch_sub(1, Ordering::Relaxed);
                if !shutdown.load(Ordering::Acquire) {
                    let _ = scaler.add_vm();
                }
            })
            .expect("spawn vm-boot thread");
    }
}

/// The scale-down victim: the VM with the lowest average executor
/// utilization among those the latest metrics refresh actually *observed*;
/// ties prefer the highest ID (the newest VM, whose caches are coldest).
/// A VM with no metrics this tick is never assumed idle — it may be
/// mid-boot or its metrics read may have transiently failed, and either
/// way killing the one VM we cannot see risks killing the busiest one.
/// Only when no VM reported at all does the choice fall back to the
/// newest. (The seed removed `ids.last()` unconditionally, which could
/// kill a fully loaded VM while an idle one kept running.)
fn least_utilized_vm(ids: &[VmId], vm_util: &HashMap<VmId, (f64, usize)>) -> Option<VmId> {
    let avg = |vm: VmId| -> Option<f64> {
        vm_util
            .get(&vm)
            .filter(|(_, n)| *n > 0)
            .map(|(sum, n)| sum / *n as f64)
    };
    ids.iter()
        .copied()
        .filter(|&vm| avg(vm).is_some())
        .min_by(|&a, &b| {
            avg(a)
                .partial_cmp(&avg(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        })
        .or_else(|| ids.iter().copied().max())
}

impl std::fmt::Debug for MonitorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorHandle")
            .field("samples", &self.timeline.samples().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_least_utilized_not_last() {
        let mut util = HashMap::new();
        util.insert(0, (1.8, 2)); // avg 0.9 — loaded
        util.insert(1, (0.1, 2)); // avg 0.05 — idle
        util.insert(2, (0.8, 2)); // avg 0.4
        assert_eq!(least_utilized_vm(&[0, 1, 2], &util), Some(1));
    }

    #[test]
    fn unobserved_vm_is_never_assumed_idle() {
        let mut util = HashMap::new();
        util.insert(1, (0.1, 2)); // observed idle
                                  // VM 7's metrics read failed this tick — it may be the busiest VM;
                                  // the observed-idle VM is the safe victim.
        assert_eq!(least_utilized_vm(&[1, 7], &util), Some(1));
    }

    #[test]
    fn with_no_metrics_at_all_the_newest_vm_goes() {
        let util = HashMap::new();
        assert_eq!(least_utilized_vm(&[3, 5, 4], &util), Some(5));
    }

    #[test]
    fn observed_ties_prefer_the_newest_vm() {
        let mut util = HashMap::new();
        util.insert(3, (0.2, 2));
        util.insert(5, (0.2, 2));
        assert_eq!(least_utilized_vm(&[3, 5], &util), Some(5));
    }

    #[test]
    fn empty_ids_have_no_victim() {
        assert_eq!(least_utilized_vm(&[], &HashMap::new()), None);
    }
}

//! The monitoring and resource-management engine (paper §4.4).
//!
//! Each executor publishes metrics to Anna; the monitor "asynchronously
//! aggregates these metrics from storage and uses them for its policy
//! engine": pin functions onto more executors when request rates outpace
//! completions, add VMs when CPU utilization exceeds 70 %, and deallocate
//! below 20 %. New VM allocation pays a simulated EC2 spin-up delay, which is
//! what produces the throughput plateaus of Figure 7.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use cloudburst_anna::metrics as mkeys;
use cloudburst_anna::AnnaClient;
use cloudburst_net::Network;
use parking_lot::Mutex;

use crate::scheduler::SchedulerRequest;
use crate::topology::Topology;
use crate::types::VmId;

/// The compute-tier scaling interface the monitor drives. Implemented by
/// `CloudburstCluster` (which actually spawns/retires VM threads).
pub trait ComputeScaler: Send + Sync + 'static {
    /// Allocate one VM (executors + cache) and return its ID.
    fn add_vm(&self) -> VmId;
    /// Deallocate a VM; returns `false` if it no longer exists.
    fn remove_vm(&self, vm: VmId) -> bool;
    /// IDs of currently running VMs.
    fn vm_ids(&self) -> Vec<VmId>;
}

/// Monitor policy configuration (thresholds from §4.4).
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Policy evaluation interval, in paper milliseconds.
    pub tick_ms: f64,
    /// Add nodes above this average utilization (0.7 in the paper).
    pub high_utilization: f64,
    /// Remove nodes below this average utilization (0.2 in the paper).
    pub low_utilization: f64,
    /// Simulated EC2 instance spin-up delay, in paper milliseconds
    /// (≈2.5 min in the paper).
    pub vm_spinup_ms: f64,
    /// VMs added per scale-up decision (the paper adds batches of 20).
    pub vms_per_scaleup: usize,
    /// Lower bound on cluster size.
    pub min_vms: usize,
    /// Upper bound on cluster size.
    pub max_vms: usize,
    /// Pin a lagging DAG's functions onto more executors when the incoming
    /// rate exceeds completions by this factor.
    pub backlog_factor: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            tick_ms: 250.0,
            high_utilization: 0.7,
            low_utilization: 0.2,
            vm_spinup_ms: 150_000.0,
            vms_per_scaleup: 4,
            min_vms: 1,
            max_vms: 64,
            backlog_factor: 1.2,
        }
    }
}

/// One sample of the autoscaling timeline (Figure 7's series).
#[derive(Debug, Clone, Copy)]
pub struct ScaleSample {
    /// Seconds since monitor start (wall clock, scaled time).
    pub at_secs: f64,
    /// Completed invocations per second since the last sample.
    pub throughput: f64,
    /// Executor threads currently allocated.
    pub executor_threads: usize,
    /// VMs currently running.
    pub vms: usize,
    /// Average executor utilization observed.
    pub avg_utilization: f64,
}

/// Handle to the running monitor.
pub struct MonitorHandle {
    shutdown: Arc<AtomicBool>,
    history: Arc<Mutex<Vec<ScaleSample>>>,
    pending_vms: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl MonitorHandle {
    /// Spawn the monitoring engine.
    pub fn spawn(
        net: Network,
        anna: AnnaClient,
        topology: Arc<Topology>,
        scaler: Arc<dyn ComputeScaler>,
        config: MonitorConfig,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let history = Arc::new(Mutex::new(Vec::new()));
        let pending_vms = Arc::new(AtomicU64::new(0));
        let worker = Worker {
            net,
            anna,
            topology,
            scaler,
            config,
            shutdown: Arc::clone(&shutdown),
            history: Arc::clone(&history),
            pending_vms: Arc::clone(&pending_vms),
            last_completed: 0.0,
            last_incoming: 0.0,
            start: Instant::now(),
            last_sample: Instant::now(),
        };
        let handle = std::thread::Builder::new()
            .name("cb-monitor".into())
            .spawn(move || worker.run())
            .expect("spawn monitor");
        Self {
            shutdown,
            history,
            pending_vms,
            handle: Some(handle),
        }
    }

    /// The autoscaling timeline collected so far.
    pub fn history(&self) -> Vec<ScaleSample> {
        self.history.lock().clone()
    }

    /// VMs currently being spun up (allocated but not yet serving).
    pub fn pending_vms(&self) -> u64 {
        self.pending_vms.load(Ordering::Relaxed)
    }

    /// Stop the monitor.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Worker {
    net: Network,
    anna: AnnaClient,
    topology: Arc<Topology>,
    scaler: Arc<dyn ComputeScaler>,
    config: MonitorConfig,
    shutdown: Arc<AtomicBool>,
    history: Arc<Mutex<Vec<ScaleSample>>>,
    pending_vms: Arc<AtomicU64>,
    last_completed: f64,
    last_incoming: f64,
    start: Instant,
    last_sample: Instant,
}

impl Worker {
    fn run(mut self) {
        let tick = self
            .net
            .time_scale()
            .ms(self.config.tick_ms)
            .max(std::time::Duration::from_millis(1));
        while !self.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(tick);
            self.evaluate();
        }
    }

    fn evaluate(&mut self) {
        let executors = self.topology.executors();
        // Aggregate executor metrics from Anna (§4.4).
        let mut total_util = 0.0;
        let mut util_count = 0usize;
        let mut completed_total = 0.0;
        for (id, _) in &executors {
            if let Ok(Some(capsule)) = self.anna.get(&mkeys::executor_metrics_key(*id)) {
                for (name, value) in mkeys::decode_metrics(&capsule.read_value()) {
                    match name.as_str() {
                        "utilization" => {
                            total_util += value;
                            util_count += 1;
                        }
                        "completed" => completed_total += value,
                        _ => {}
                    }
                }
            }
        }
        let avg_util = if util_count == 0 {
            0.0
        } else {
            total_util / util_count as f64
        };

        // Scheduler-side incoming counts.
        let mut incoming_total = 0.0;
        let mut lagging_dags: Vec<String> = Vec::new();
        for sid in 0..self.topology.schedulers().len() as u64 {
            if let Ok(Some(capsule)) = self.anna.get(&mkeys::scheduler_stats_key(sid)) {
                for (name, value) in mkeys::decode_metrics(&capsule.read_value()) {
                    if name == "incoming_total" {
                        incoming_total += value;
                    } else if let Some(dag) = name.strip_prefix("calls:") {
                        lagging_dags.push(dag.to_string());
                    }
                }
            }
        }

        // Timeline sample.
        let now = Instant::now();
        let dt = now.duration_since(self.last_sample).as_secs_f64().max(1e-9);
        let throughput = (completed_total - self.last_completed).max(0.0) / dt;
        let incoming_rate = (incoming_total - self.last_incoming).max(0.0) / dt;
        self.last_completed = completed_total;
        self.last_incoming = incoming_total;
        self.last_sample = now;
        self.history.lock().push(ScaleSample {
            at_secs: self.start.elapsed().as_secs_f64(),
            throughput,
            executor_threads: executors.len(),
            vms: self.scaler.vm_ids().len(),
            avg_utilization: avg_util,
        });

        // Policy 1: function backlog → pin onto more executors (§4.4).
        if incoming_rate > throughput * self.config.backlog_factor && incoming_rate > 0.0 {
            if let Some(&scheduler) = self.topology.schedulers().first() {
                for dag in lagging_dags {
                    let _ = self.net.send(
                        scheduler,
                        scheduler,
                        SchedulerRequest::PinFunction { function: dag },
                    );
                }
            }
        }

        // Policy 2: cluster sizing on average utilization (§4.4).
        let vms_now =
            self.scaler.vm_ids().len() + self.pending_vms.load(Ordering::Relaxed) as usize;
        if avg_util > self.config.high_utilization && vms_now < self.config.max_vms {
            let to_add = self
                .config
                .vms_per_scaleup
                .min(self.config.max_vms - vms_now);
            for _ in 0..to_add {
                self.spawn_vm_after_boot();
            }
        } else if avg_util < self.config.low_utilization {
            let ids = self.scaler.vm_ids();
            if ids.len() > self.config.min_vms {
                if let Some(&victim) = ids.last() {
                    self.scaler.remove_vm(victim);
                }
            }
        }
    }

    /// Allocate a VM after the simulated EC2 boot delay — "we are mostly
    /// limited by the high cost of spinning up new EC2 instances" (§6.1.4).
    fn spawn_vm_after_boot(&self) {
        let boot = self.net.time_scale().ms(self.config.vm_spinup_ms);
        let scaler = Arc::clone(&self.scaler);
        let pending = Arc::clone(&self.pending_vms);
        let shutdown = Arc::clone(&self.shutdown);
        pending.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name("cb-vm-boot".into())
            .spawn(move || {
                std::thread::sleep(boot);
                pending.fetch_sub(1, Ordering::Relaxed);
                if !shutdown.load(Ordering::Acquire) {
                    let _ = scaler.add_vm();
                }
            })
            .expect("spawn vm-boot thread");
    }
}

impl std::fmt::Debug for MonitorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorHandle")
            .field("samples", &self.history.lock().len())
            .finish()
    }
}

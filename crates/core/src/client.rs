//! [`CloudburstClient`]: the user-facing API, mirroring the Python client of
//! paper §3 (Figure 2): `put`/`get`, function registration, synchronous
//! calls, and KVS-backed futures.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cloudburst_anna::metrics as mkeys;
use cloudburst_anna::{AnnaClient, AnnaError};
use cloudburst_lattice::{Key, VectorClock};
use cloudburst_net::{reply_channel, Endpoint, Network, RecvError, Site};

use crate::dag::{DagError, DagSpec};
use crate::function::{FunctionRegistry, Runtime};
use crate::scheduler::SchedulerRequest;
use crate::topology::Topology;
use crate::types::{Arg, ConsistencyLevel, InvocationResult};

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No scheduler is registered.
    NoSchedulers,
    /// The request could not be sent or timed out.
    Unreachable(String),
    /// DAG registration failed.
    Dag(DagError),
    /// Storage error.
    Anna(AnnaError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSchedulers => f.write_str("no schedulers available"),
            Self::Unreachable(e) => write!(f, "request failed: {e}"),
            Self::Dag(e) => write!(f, "DAG error: {e}"),
            Self::Anna(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<AnnaError> for ClientError {
    fn from(e: AnnaError) -> Self {
        Self::Anna(e)
    }
}

impl From<DagError> for ClientError {
    fn from(e: DagError) -> Self {
        Self::Dag(e)
    }
}

/// A handle on a result stored in the KVS — the `CloudburstFuture` of §3.
#[derive(Debug)]
pub struct CloudburstFuture {
    key: Key,
    anna: AnnaClient,
}

impl CloudburstFuture {
    /// The KVS key the result will appear under.
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// Block until the result appears (polling the KVS), up to `timeout`.
    pub fn get(&self, timeout: Duration) -> Result<Bytes, ClientError> {
        // lint: allow(L003): client-facing timeout deadline; timeouts are wall-clock by contract
        let deadline = Instant::now() + timeout;
        loop {
            // Cheap primary-only probe each iteration (a poll's expected
            // answer is "not yet", and a failover walk per poll would
            // multiply read traffic by the replication factor); a dead
            // primary falls back to the full failover read.
            let polled = match self.anna.get_primary(&self.key) {
                Ok(capsule) => capsule,
                Err(_) => self.anna.get(&self.key)?,
            };
            if let Some(capsule) = polled {
                return Ok(capsule.read_value());
            }
            // lint: allow(L003): deadline comparison for the timeout above
            if Instant::now() >= deadline {
                return Err(ClientError::Unreachable("future timed out".into()));
            }
            std::thread::sleep(Duration::from_micros(300));
        }
    }
}

/// A Cloudburst client.
pub struct CloudburstClient {
    endpoint: Endpoint,
    anna: AnnaClient,
    registry: FunctionRegistry,
    topology: Arc<Topology>,
    level: ConsistencyLevel,
    /// The client's region, inherited from its Anna client: KVS reads walk
    /// local replicas first, and every scheduler request carries it so DAG
    /// placement prefers executors here.
    region: u16,
    next_scheduler: AtomicU64,
    next_response: AtomicU64,
    causal_clock: AtomicU64,
    timeout: Duration,
}

impl CloudburstClient {
    /// Default client-side timeout (wall clock).
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

    /// Create a client. The client joins the network at its Anna client's
    /// region site, so requests from a multi-region deployment pay the
    /// right link latency in both directions.
    pub fn new(
        net: &Network,
        anna: AnnaClient,
        registry: FunctionRegistry,
        topology: Arc<Topology>,
        level: ConsistencyLevel,
    ) -> Self {
        let region = anna.region();
        Self {
            endpoint: net.register_at(Site::region(region)),
            region,
            anna,
            registry,
            topology,
            level,
            next_scheduler: AtomicU64::new(0),
            next_response: AtomicU64::new(0),
            causal_clock: AtomicU64::new(0),
            timeout: Self::DEFAULT_TIMEOUT,
        }
    }

    /// Override the client timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Direct KVS access (wrapped in the deployment's capsule kind).
    pub fn put(&self, key: impl Into<Key>, value: impl Into<Bytes>) -> Result<(), ClientError> {
        let key = key.into();
        if self.level.is_causal() {
            let clock = VectorClock::singleton(
                self.endpoint.addr().raw(),
                self.causal_clock.fetch_add(1, Ordering::Relaxed) + 1,
            );
            self.anna.put_causal(&key, clock, [], value.into())?;
        } else {
            self.anna.put_lww(&key, value.into())?;
        }
        Ok(())
    }

    /// Direct KVS read (de-encapsulated).
    pub fn get(&self, key: impl Into<Key>) -> Result<Option<Bytes>, ClientError> {
        Ok(self.anna.get(&key.into())?.map(|c| c.read_value()))
    }

    /// Register a function: body into the registry, metadata into Anna
    /// (paper §3, Figure 2 line 6).
    pub fn register_function(
        &self,
        name: impl Into<String>,
        body: impl Fn(&mut dyn Runtime, &[Bytes]) -> Result<Bytes, String> + Send + Sync + 'static,
    ) -> Result<(), ClientError> {
        let name = name.into();
        self.registry.register(&name, body);
        self.anna.put_lww(
            &mkeys::function_key(&name),
            Bytes::from_static(b"registered"),
        )?;
        self.anna
            .add_to_set(&mkeys::function_list_key(), Bytes::from(name))?;
        Ok(())
    }

    /// Invoke a single function synchronously through a scheduler.
    pub fn call_function(
        &self,
        name: &str,
        args: Vec<Arg>,
    ) -> Result<InvocationResult, ClientError> {
        let scheduler = self.pick_scheduler()?;
        let (reply, waiter) = reply_channel::<InvocationResult>(self.endpoint.network());
        self.endpoint
            .send(
                scheduler,
                SchedulerRequest::CallFunction {
                    function: name.to_string(),
                    args,
                    region: self.region,
                    reply,
                },
            )
            .map_err(|e| ClientError::Unreachable(e.to_string()))?;
        waiter.wait_timeout(self.timeout).map_err(map_recv)
    }

    /// Register a DAG of functions (paper §3).
    pub fn register_dag(&self, spec: DagSpec) -> Result<(), ClientError> {
        let scheduler = self.pick_scheduler()?;
        let (reply, waiter) = reply_channel::<Result<(), DagError>>(self.endpoint.network());
        self.endpoint
            .send(scheduler, SchedulerRequest::RegisterDag { spec, reply })
            .map_err(|e| ClientError::Unreachable(e.to_string()))?;
        waiter.wait_timeout(self.timeout).map_err(map_recv)??;
        Ok(())
    }

    /// Execute a DAG and wait for the sink's result ("results by default are
    /// sent directly back to the client", §3).
    pub fn call_dag(
        &self,
        name: &str,
        args: HashMap<usize, Vec<Arg>>,
    ) -> Result<InvocationResult, ClientError> {
        let scheduler = self.pick_scheduler()?;
        let (reply, waiter) = reply_channel::<InvocationResult>(self.endpoint.network());
        self.endpoint
            .send(
                scheduler,
                SchedulerRequest::CallDag {
                    name: name.to_string(),
                    args,
                    region: self.region,
                    output_key: None,
                    reply: Some(reply),
                },
            )
            .map_err(|e| ClientError::Unreachable(e.to_string()))?;
        waiter.wait_timeout(self.timeout).map_err(map_recv)
    }

    /// Execute a DAG with the result stored in the KVS; returns a
    /// [`CloudburstFuture`] immediately (`store_in_kvs=True` of Figure 2).
    pub fn call_dag_stored(
        &self,
        name: &str,
        args: HashMap<usize, Vec<Arg>>,
    ) -> Result<CloudburstFuture, ClientError> {
        let scheduler = self.pick_scheduler()?;
        let n = self.next_response.fetch_add(1, Ordering::Relaxed);
        let key = Key::new(format!("resp/{}/{n}", self.endpoint.addr().raw()));
        self.endpoint
            .send(
                scheduler,
                SchedulerRequest::CallDag {
                    name: name.to_string(),
                    args,
                    region: self.region,
                    output_key: Some(key.clone()),
                    reply: None,
                },
            )
            .map_err(|e| ClientError::Unreachable(e.to_string()))?;
        Ok(CloudburstFuture {
            key,
            anna: AnnaClient::new_in(
                self.endpoint.network(),
                Arc::clone(self.anna.directory()),
                self.region,
            ),
        })
    }

    /// The underlying Anna client.
    pub fn anna(&self) -> &AnnaClient {
        &self.anna
    }

    /// Round-robin over schedulers (the paper's stateless load balancer).
    fn pick_scheduler(&self) -> Result<cloudburst_net::Address, ClientError> {
        let schedulers = self.topology.schedulers();
        if schedulers.is_empty() {
            return Err(ClientError::NoSchedulers);
        }
        let idx = self.next_scheduler.fetch_add(1, Ordering::Relaxed) as usize;
        Ok(schedulers[idx % schedulers.len()])
    }
}

impl fmt::Debug for CloudburstClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CloudburstClient")
            .field("addr", &self.endpoint.addr())
            .field("level", &self.level)
            .finish()
    }
}

fn map_recv(e: RecvError) -> ClientError {
    match e {
        RecvError::Timeout => ClientError::Unreachable("request timed out".into()),
        RecvError::Disconnected => ClientError::Unreachable("scheduler disconnected".into()),
    }
}

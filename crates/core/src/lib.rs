//! **Cloudburst**: a stateful Functions-as-a-Service runtime — a Rust
//! reproduction of *"Cloudburst: Stateful Functions-as-a-Service"*
//! (Sreekanti et al., PVLDB 13(11), 2020).
//!
//! Cloudburst implements **logical disaggregation with physical colocation
//! (LDPC)**: compute (function executors) and storage (the Anna KVS)
//! autoscale independently, while a mutable cache co-located with the
//! executors on every VM gives functions low-latency access to shared state.
//! On top of this architecture it provides **distributed session
//! consistency** — repeatable read and causal consistency guarantees that
//! hold across the multiple machines a composition of functions runs on.
//!
//! # Quick start
//!
//! ```
//! use cloudburst::cluster::{CloudburstCluster, CloudburstConfig};
//! use cloudburst::codec;
//! use cloudburst::dag::DagSpec;
//! use cloudburst::types::Arg;
//! use std::collections::HashMap;
//!
//! let cluster = CloudburstCluster::launch(CloudburstConfig::instant());
//! let client = cluster.client();
//!
//! client
//!     .register_function("increment", |_rt, args| {
//!         let x = codec::decode_i64(&args[0]).ok_or("bad arg")?;
//!         Ok(codec::encode_i64(x + 1))
//!     })
//!     .unwrap();
//! client
//!     .register_function("square", |_rt, args| {
//!         let x = codec::decode_i64(&args[0]).ok_or("bad arg")?;
//!         Ok(codec::encode_i64(x * x))
//!     })
//!     .unwrap();
//!
//! // square(increment(4)) == 25, composed as a registered DAG.
//! client
//!     .register_dag(DagSpec::linear("pipeline", &["increment", "square"]))
//!     .unwrap();
//! let result = client
//!     .call_dag("pipeline", HashMap::from([(0, vec![Arg::value(codec::encode_i64(4))])]))
//!     .unwrap();
//! assert_eq!(codec::decode_i64(&result.unwrap()), Some(25));
//! ```
//!
//! # Crate map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`types`] | §3, §5 | IDs, args, consistency levels |
//! | [`function`] | §3 | function registry + the `Runtime` API (Table 1) |
//! | [`dag`] | §3 | DAG registration and validation |
//! | [`cache`] | §4.2, §5.3 | co-located caches, Algorithms 1 & 2 |
//! | [`executor`] | §4.1 | executor threads, DAG triggering, messaging |
//! | [`scheduler`] | §4.3 | locality/load scheduling, DAG re-execution |
//! | [`monitor`] | §4.4 | metrics aggregation + autoscaling policy |
//! | [`cluster`] | §4 | whole-system assembly |
//! | [`client`] | §3 | user-facing API incl. `CloudburstFuture` |
//! | [`consistency`] | §5, §6.2 | session metadata, anomaly detection |

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod cluster;
pub mod codec;
pub mod consistency;
pub mod dag;
pub mod executor;
pub mod function;
pub mod monitor;
pub mod scheduler;
pub mod topology;
pub mod types;

pub use cache::{CacheConfig, VmCache};
pub use client::{ClientError, CloudburstClient, CloudburstFuture};
pub use cluster::{CloudburstCluster, CloudburstConfig};
pub use consistency::{AnomalyCounts, SessionMeta, TraceEvent, TraceSink};
pub use dag::{DagError, DagSpec};
pub use executor::ExecutorConfig;
pub use function::{FunctionRegistry, Runtime};
pub use monitor::{MonitorConfig, ScaleSample};
pub use scheduler::SchedulerConfig;
pub use types::{Arg, ConsistencyLevel, InvocationResult};

//! Shared types of the Cloudburst runtime.

use bytes::Bytes;
use cloudburst_lattice::{Key, Timestamp, VectorClock};

/// Unique ID of a function-executor thread (the paper's "unique ID" used for
/// direct messaging, §3, and as the writer ID in causal vector clocks, §5.2).
pub type ExecutorId = u64;

/// Unique ID of a VM hosting executors plus one co-located cache.
pub type VmId = u64;

/// Unique ID of one DAG execution request (the consistency "session").
pub type RequestId = u64;

/// The consistency level a Cloudburst deployment runs at (paper §5, §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConsistencyLevel {
    /// Last-writer wins: eventual consistency (default mode).
    #[default]
    Lww,
    /// Distributed session repeatable read (Algorithm 1).
    RepeatableRead,
    /// Single-key causality: causal capsules, no dependency tracking and no
    /// metadata shipping (weaker comparison point of §6.2).
    SingleKeyCausal,
    /// Multi-key causality: bolt-on causal-cut caches, no cross-cache
    /// metadata shipping (§6.2).
    MultiKeyCausal,
    /// Distributed session causal consistency (Algorithm 2).
    DistributedSessionCausal,
}

impl ConsistencyLevel {
    /// Whether values are wrapped in causal (vs LWW) capsules.
    pub fn is_causal(self) -> bool {
        matches!(
            self,
            Self::SingleKeyCausal | Self::MultiKeyCausal | Self::DistributedSessionCausal
        )
    }

    /// Whether caches must maintain a causal cut (bolt-on protocol).
    pub fn needs_causal_cut(self) -> bool {
        matches!(self, Self::MultiKeyCausal | Self::DistributedSessionCausal)
    }

    /// Whether read-set / dependency metadata is shipped between executors.
    pub fn ships_session_metadata(self) -> bool {
        matches!(self, Self::RepeatableRead | Self::DistributedSessionCausal)
    }

    /// Short label used in benchmark output (matches the paper's figures).
    pub fn label(self) -> &'static str {
        match self {
            Self::Lww => "LWW",
            Self::RepeatableRead => "DSRR",
            Self::SingleKeyCausal => "SK",
            Self::MultiKeyCausal => "MK",
            Self::DistributedSessionCausal => "DSC",
        }
    }
}

/// A function argument: either an inline value or a KVS reference that the
/// runtime resolves (and exploits for locality-aware scheduling, §3/§4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// A regular inline value.
    Value(Bytes),
    /// A `CloudburstReference`: resolved through the co-located cache before
    /// invocation.
    Ref(Key),
}

impl Arg {
    /// Inline value constructor.
    pub fn value(bytes: impl Into<Bytes>) -> Self {
        Self::Value(bytes.into())
    }

    /// KVS-reference constructor.
    pub fn reference(key: impl Into<Key>) -> Self {
        Self::Ref(key.into())
    }

    /// The referenced key, if any.
    pub fn as_ref_key(&self) -> Option<&Key> {
        match self {
            Self::Ref(k) => Some(k),
            Self::Value(_) => None,
        }
    }
}

/// The version identity of a read, as recorded in session read sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionId {
    /// LWW timestamp (Algorithm 1 compares these exactly).
    Lww(Timestamp),
    /// Causal vector clock (Algorithm 2 compares these by domination).
    Causal(VectorClock),
}

/// The result of a function or DAG invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvocationResult {
    /// The function's return value.
    Ok(Bytes),
    /// The function (or the runtime) reported an error; returned to the
    /// client per §4.5.
    Err(String),
}

impl InvocationResult {
    /// Unwrap the value, panicking on error (test convenience).
    pub fn unwrap(self) -> Bytes {
        match self {
            Self::Ok(b) => b,
            Self::Err(e) => panic!("invocation failed: {e}"),
        }
    }

    /// Whether the invocation succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, Self::Ok(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_level_predicates() {
        use ConsistencyLevel::*;
        assert!(!Lww.is_causal());
        assert!(!RepeatableRead.is_causal());
        assert!(SingleKeyCausal.is_causal());
        assert!(MultiKeyCausal.needs_causal_cut());
        assert!(DistributedSessionCausal.needs_causal_cut());
        assert!(!SingleKeyCausal.needs_causal_cut());
        assert!(RepeatableRead.ships_session_metadata());
        assert!(DistributedSessionCausal.ships_session_metadata());
        assert!(!MultiKeyCausal.ships_session_metadata());
        assert_eq!(Lww.label(), "LWW");
        assert_eq!(DistributedSessionCausal.label(), "DSC");
    }

    #[test]
    fn arg_helpers() {
        let v = Arg::value(&b"x"[..]);
        assert!(v.as_ref_key().is_none());
        let r = Arg::reference("k");
        assert_eq!(r.as_ref_key().unwrap().as_str(), "k");
    }

    #[test]
    fn invocation_result() {
        assert!(InvocationResult::Ok(Bytes::new()).is_ok());
        assert!(!InvocationResult::Err("boom".into()).is_ok());
        assert_eq!(
            InvocationResult::Ok(Bytes::from_static(b"y"))
                .unwrap()
                .as_ref(),
            b"y"
        );
    }

    #[test]
    #[should_panic(expected = "invocation failed")]
    fn unwrap_on_err_panics() {
        let _ = InvocationResult::Err("boom".into()).unwrap();
    }
}

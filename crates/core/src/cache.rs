//! [`VmCache`]: the mutable cache co-located with every function-execution
//! VM — the "physical colocation" half of LDPC (paper §4.2) and the site of
//! the distributed session consistency protocols (§5.3).
//!
//! Executors on the VM call the cache through shared memory (the paper's
//! IPC); a cache *server thread* additionally receives pushed
//! [`cloudburst_anna::KeyUpdate`]s from Anna, serves version-snapshot fetches
//! from downstream caches, and periodically publishes its cached keyset to
//! Anna so the key→cache index stays fresh.

use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cloudburst_anna::{AnnaClient, KeyUpdate};
use cloudburst_lattice::{Capsule, Key, Lattice, VectorClock};
use cloudburst_lru::SlotLru;
use cloudburst_net::{reply_channel, Address, Batch, Endpoint, Network, ReplyHandle, Site};
use cloudburst_runtime::{Actor, ActorCtx, ActorHandle, Poll, Runtime as ActorRuntime};
use parking_lot::{Condvar, Mutex};

use crate::consistency::session::SessionMeta;
use crate::topology::Topology;
use crate::types::{ConsistencyLevel, ExecutorId, RequestId, VersionId, VmId};

/// Requests served by a cache's server thread (cache-to-cache protocol).
#[derive(Debug)]
pub enum CacheRequest {
    /// Fetch the version snapshot of `key` held for `request_id`
    /// (Algorithms 1 & 2: `fetch_from_upstream`). Falls back to the live
    /// cache and then to Anna if no snapshot is held.
    Fetch {
        /// The session whose snapshot is wanted.
        request_id: RequestId,
        /// The key to fetch.
        key: Key,
        /// Response channel.
        reply: ReplyHandle<Option<Capsule>>,
    },
    /// A DAG completed: version snapshots for `request_id` can be evicted
    /// ("the last executor in the DAG notifies all upstream caches of DAG
    /// completion, allowing version snapshots to be evicted", §5.3).
    SessionComplete {
        /// The completed session.
        request_id: RequestId,
    },
    /// Stop the server thread.
    Shutdown,
}

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// How often the cache publishes its keyset snapshot to Anna, in paper
    /// milliseconds.
    pub keyset_publish_interval_ms: f64,
    /// Maximum number of cached entries (LRU beyond this).
    pub max_entries: usize,
    /// How many recursive dependency-fetch rounds the bolt-on causal-cut
    /// maintenance performs before accepting a best-effort cut.
    pub causal_cut_fetch_rounds: usize,
    /// Number of lock stripes the live cache is split into. Executor threads
    /// on a VM touch the cache concurrently; striping by key hash removes the
    /// single global lock from the hot read/write path. Capacity and LRU
    /// eviction are enforced per shard (`max_entries / shards` each), so with
    /// more than one shard eviction order is approximate LRU. Set to 1 for
    /// the exact single-list behaviour.
    pub shards: usize,
    /// Write-behind window in paper milliseconds: session writes accumulate
    /// in a dirty buffer (repeated writes to a key merge in place) and flush
    /// to Anna as one batched `MultiPut` per responsible node per window
    /// (paper §4.2's asynchronous write-back, coalesced). `0.0` flushes
    /// every write immediately, one message per write — the pre-batching
    /// behaviour.
    pub write_flush_interval_ms: f64,
    /// Flush the dirty buffer early once its payload bytes reach this cap,
    /// and never put more than this many payload bytes in one `MultiPut`.
    pub max_batch_bytes: usize,
    /// Coalesce concurrent misses on one key into a single KVS fetch
    /// (single-flight fills): the first missing thread fetches, every
    /// concurrent miss on the same key blocks on the in-flight fill and
    /// receives the same `Arc`'d capsule. Disable to restore the seed's
    /// thundering-herd behaviour (one independent fetch per missing thread —
    /// the bench baseline).
    pub single_flight: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            keyset_publish_interval_ms: 50.0,
            max_entries: 100_000,
            causal_cut_fetch_rounds: 3,
            shards: 8,
            write_flush_interval_ms: 2.0,
            max_batch_bytes: 1 << 20,
            single_flight: true,
        }
    }
}

/// Cache hit/miss statistics.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Reads served from the local cache.
    pub hits: AtomicU64,
    /// Reads that had to fetch from Anna.
    pub misses: AtomicU64,
    /// Keys warmed by batched prefetches ([`CacheInner::prefetch`]). A
    /// prefetched key's subsequent read-through counts as a hit, so this is
    /// the number to consult for the cache's remote-fetch traffic.
    pub prefetched_keys: AtomicU64,
    /// Batched write-behind flushes issued to Anna.
    pub write_flushes: AtomicU64,
    /// Misses that piggy-backed on another thread's in-flight fill instead
    /// of issuing their own KVS fetch (single-flight coalescing).
    pub coalesced_fills: AtomicU64,
    /// Version fetches served to downstream caches.
    pub upstream_fetches_served: AtomicU64,
    /// Version fetches this cache issued to upstream caches.
    pub upstream_fetches_issued: AtomicU64,
}

/// One cached entry: the capsule handle plus its recency slot, so a hit
/// resolves value *and* LRU position with a single hash lookup.
struct CacheEntry {
    capsule: Capsule,
    slot: u32,
}

/// Pending write-behind state (see [`CacheInner::put_session`]).
#[derive(Default)]
struct DirtyBuffer {
    entries: HashMap<Key, Capsule>,
    bytes: usize,
}

/// One in-flight cache fill. The leading thread publishes the fetch outcome
/// (`Some(result)`) and wakes every waiter; `None` means still pending.
struct FillSlot {
    // lock-rank: 48 cache-fill-slot
    state: Mutex<Option<Option<Capsule>>>,
    ready: Condvar,
}

impl Default for FillSlot {
    fn default() -> Self {
        Self {
            state: Mutex::ranked(48, "cache-fill-slot", None),
            ready: Condvar::new(),
        }
    }
}

/// One lock stripe of the live cache: a key→entry map plus an O(1) slab LRU
/// ([`cloudburst_lru::SlotLru`] replaces the old `BTreeSet<(u64, Key)>`
/// index, which cost `O(log n)` and two key clones per touch; the slot held
/// in each entry makes a touch a pointer splice with no second lookup).
#[derive(Default)]
struct CacheShard {
    map: HashMap<Key, CacheEntry>,
    lru: SlotLru,
}

impl CacheShard {
    fn remove(&mut self, key: &Key) {
        if let Some(entry) = self.map.remove(key) {
            self.lru.remove(entry.slot);
        }
    }

    fn evict_to(&mut self, max_entries: usize) {
        while self.map.len() > max_entries {
            let Some(key) = self.lru.pop_coldest() else {
                break;
            };
            self.map.remove(&key);
        }
    }
}

/// The shared state executors interact with (the paper's IPC interface).
pub struct CacheInner {
    vm: VmId,
    addr: Address,
    net: Network,
    anna: AnnaClient,
    topology: Arc<Topology>,
    level: ConsistencyLevel,
    config: CacheConfig,
    /// The live cache, lock-striped by key hash. Executor reads and writes,
    /// Anna pushes, and keyset publication all go through these shards; with
    /// the old single `Mutex<CacheData>` every executor thread on the VM
    /// serialized here.
    // lock-rank: 40 cache-shard
    shards: Box<[Mutex<CacheShard>]>,
    /// Per-shard entry cap (`max_entries / shards`, at least 1).
    shard_max: usize,
    shard_hasher: RandomState,
    /// Per-session version snapshots (Algorithms 1 & 2). Values are cheap
    /// capsule handles: storing one is a refcount bump, and the snapshot
    /// stays valid when the live entry later merges new state, because a
    /// merge copies-on-divergence instead of mutating shared data.
    // lock-rank: 42 cache-snapshots
    snapshots: Mutex<HashMap<RequestId, HashMap<Key, Capsule>>>,
    /// Write-behind buffer: session writes land here and flush to Anna as
    /// batched `MultiPut`s on the flush window (server thread) or when the
    /// byte cap fills (writer thread). Repeated writes to one key merge in
    /// place, so a hot key costs one flushed entry per window.
    // lock-rank: 44 cache-dirty
    dirty: Mutex<DirtyBuffer>,
    /// In-flight fills, keyed by the missing key (single-flight coalescing;
    /// see [`CacheInner::get_or_fetch`]). Entries exist only while a fetch
    /// is outstanding — the leader always removes its entry before
    /// publishing the outcome, so a failed fill can never poison the slot.
    // lock-rank: 46 cache-inflight
    inflight: Mutex<HashMap<Key, Arc<FillSlot>>>,
    /// Stats, exported to executor metrics.
    pub stats: CacheStats,
    shutdown: AtomicBool,
}

/// A running VM cache: shared state plus its server actor.
pub struct VmCache {
    inner: Arc<CacheInner>,
    handle: ActorHandle,
}

impl VmCache {
    /// Spawn the cache for VM `vm` as an actor on the shared runtime.
    pub fn spawn(
        runtime: &ActorRuntime,
        vm: VmId,
        net: &Network,
        anna: AnnaClient,
        topology: Arc<Topology>,
        level: ConsistencyLevel,
        config: CacheConfig,
    ) -> Self {
        // The server endpoint lives at the same region site as the Anna
        // client the cache was handed — one VM, one region.
        let endpoint = net.register_at(Site::region(anna.region()));
        // More shards than capacity would let per-shard caps overshoot the
        // configured total.
        let shard_count = config.shards.max(1).min(config.max_entries.max(1));
        let shards: Box<[Mutex<CacheShard>]> = (0..shard_count)
            .map(|_| Mutex::ranked(40, "cache-shard", CacheShard::default()))
            .collect();
        let inner = Arc::new(CacheInner {
            vm,
            addr: endpoint.addr(),
            net: net.clone(),
            anna,
            topology,
            level,
            config,
            shards,
            shard_max: (config.max_entries / shard_count).max(1),
            shard_hasher: RandomState::new(),
            snapshots: Mutex::ranked(42, "cache-snapshots", HashMap::new()),
            dirty: Mutex::ranked(44, "cache-dirty", DirtyBuffer::default()),
            inflight: Mutex::ranked(46, "cache-inflight", HashMap::new()),
            stats: CacheStats::default(),
            shutdown: AtomicBool::new(false),
        });
        let handle = runtime.register(format!("cb-cache-{vm}"));
        {
            let waker = handle.clone();
            endpoint.set_notify(move || waker.notify());
        }
        let publish_interval = inner
            .net
            .time_scale()
            .ms(inner.config.keyset_publish_interval_ms)
            .max(Duration::from_micros(200));
        // With the window disabled writes go straight through in
        // `mark_dirty`, so the flush must not drive the server cadence (a
        // zero interval would otherwise busy-tick it).
        let flush_enabled = inner.config.write_flush_interval_ms > 0.0;
        let flush_interval = if flush_enabled {
            inner
                .net
                .time_scale()
                .ms(inner.config.write_flush_interval_ms)
                .max(Duration::from_micros(100))
        } else {
            publish_interval
        };
        // lint: allow(L003): publish/flush windows pace on wall clock (scaled paper-ms), by design
        let now = Instant::now();
        let server = CacheServer {
            inner: Arc::clone(&inner),
            endpoint,
            flush_enabled,
            flush_interval,
            publish_interval,
            next_flush: now + flush_interval,
            next_publish: now + publish_interval,
        };
        runtime.start(&handle, server);
        Self { inner, handle }
    }

    /// The executor-facing shared handle.
    pub fn inner(&self) -> Arc<CacheInner> {
        Arc::clone(&self.inner)
    }

    /// The cache server's network address.
    pub fn addr(&self) -> Address {
        self.inner.addr
    }

    /// Stop the server actor and wait for it. The flag + direct notify pair
    /// works even when the network path to the server is already dead.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.handle.notify();
        self.handle.join();
    }

    /// Crash-stop the server actor: drop it *without* the final
    /// write-behind flush (failure injection — a crashed VM's buffered
    /// writes die with it; the graceful path is [`VmCache::shutdown`]).
    /// The shutdown flag is deliberately *not* set first: a racing poll
    /// that saw it would flush, which a crash must never do.
    pub fn stop(&self) {
        self.handle.stop();
    }
}

impl Drop for VmCache {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl CacheInner {
    /// The VM this cache serves.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The cache server's address.
    pub fn addr(&self) -> Address {
        self.addr
    }

    /// The deployment consistency level.
    pub fn level(&self) -> ConsistencyLevel {
        self.level
    }

    /// The Anna client used by this cache.
    pub fn anna(&self) -> &AnnaClient {
        &self.anna
    }

    /// Number of locally cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().map.is_empty())
    }

    /// Whether `key` is currently cached (no side effects).
    pub fn contains(&self, key: &Key) -> bool {
        self.shard(key).lock().map.contains_key(key)
    }

    /// The total number of entries the cache may hold (shard granularity).
    pub fn capacity(&self) -> usize {
        self.shard_max * self.shards.len()
    }

    /// The lock stripe owning `key`.
    fn shard(&self, key: &Key) -> &Mutex<CacheShard> {
        let h = self.shard_hasher.hash_one(key);
        &self.shards[(h as usize) % self.shards.len()]
    }

    // ------------------------------------------------------------------
    // Executor-facing reads and writes
    // ------------------------------------------------------------------

    /// Read `key` under the session's consistency protocol. This is the
    /// dispatch point for Algorithm 1 (repeatable read) and Algorithm 2
    /// (distributed session causal consistency).
    pub fn get_session(&self, key: &Key, session: &mut SessionMeta) -> Option<Capsule> {
        let capsule = match self.level {
            ConsistencyLevel::Lww
            | ConsistencyLevel::SingleKeyCausal
            | ConsistencyLevel::MultiKeyCausal => self.get_or_fetch(key),
            ConsistencyLevel::RepeatableRead => self.get_repeatable_read(key, session),
            ConsistencyLevel::DistributedSessionCausal => self.get_causal_session(key, session),
        }?;
        // Record into the session (no-op for levels that ship no metadata).
        match &capsule {
            Capsule::Lww(l) => {
                session.record_read(key.clone(), VersionId::Lww(l.timestamp), self.addr, []);
            }
            Capsule::Causal(c) => {
                session.record_read(
                    key.clone(),
                    VersionId::Causal(c.vector_clock()),
                    self.addr,
                    c.dependencies(),
                );
            }
            Capsule::Set(_) => {}
        }
        Some(capsule)
    }

    /// Algorithm 1 — Repeatable Read.
    fn get_repeatable_read(&self, key: &Key, session: &mut SessionMeta) -> Option<Capsule> {
        if let Some(record) = session.read_set.get(key).cloned() {
            let VersionId::Lww(required) = record.version else {
                return self.get_or_fetch(key);
            };
            // Own snapshot first (we may be the upstream cache ourselves).
            if let Some(snap) = self.snapshot_of(session.request_id, key) {
                if snap.lww_timestamp() == Some(required) {
                    return Some(snap);
                }
            }
            // Exact version cached locally?
            if let Some(local) = self.peek(key) {
                if local.lww_timestamp() == Some(required) {
                    return Some(local);
                }
            }
            // Version mismatch → query the upstream cache that snapshotted
            // the version (line 5 of Algorithm 1).
            let fetched = self.fetch_from_upstream(record.cache, session.request_id, key);
            if let Some(c) = &fetched {
                // Keep a local snapshot so further re-reads on this VM hit.
                self.store_snapshot(session.request_id, key, c.clone());
            }
            return fetched;
        }
        // First read of this key in the DAG: any available version, which
        // becomes the session's snapshot (line 9).
        let capsule = self.get_or_fetch(key)?;
        self.store_snapshot(session.request_id, key, capsule.clone());
        Some(capsule)
    }

    /// Algorithm 2 — Distributed Session Causal Consistency.
    fn get_causal_session(&self, key: &Key, session: &mut SessionMeta) -> Option<Capsule> {
        // `valid(local, required)` is true if local is concurrent with or
        // dominates the upstream version (k ≥ cache_version).
        let required = if let Some(record) = session.read_set.get(key) {
            match &record.version {
                VersionId::Causal(vc) => Some((vc.clone(), record.cache)),
                VersionId::Lww(_) => None,
            }
        } else {
            session
                .dependencies
                .get(key)
                .map(|dep| (dep.clock.clone(), dep.cache))
        };
        let Some((required_clock, upstream)) = required else {
            // Unconstrained read; serve from the local causal cut.
            let capsule = self.get_or_fetch(key)?;
            self.store_snapshot(session.request_id, key, capsule.clone());
            self.snapshot_dependencies(session.request_id, &capsule);
            return Some(capsule);
        };
        if let Some(local) = self.peek(key) {
            if let Some(local_clock) = local.causal_clock() {
                if valid(&local_clock, &required_clock) {
                    self.store_snapshot(session.request_id, key, local.clone());
                    return Some(local);
                }
            }
        }
        // Local version is causally older → fetch the snapshot upstream.
        let fetched = self.fetch_from_upstream(upstream, session.request_id, key);
        if let Some(c) = &fetched {
            self.store_snapshot(session.request_id, key, c.clone());
        }
        fetched
    }

    /// Write `value` to `key` under the session's protocol; returns the new
    /// version's identity. The cache applies the update locally,
    /// acknowledges immediately, and asynchronously merges into Anna (§4.2).
    pub fn put_session(
        &self,
        key: &Key,
        value: Bytes,
        session: &mut SessionMeta,
        writer: ExecutorId,
        invocation_reads: &[(Key, VectorClock)],
    ) -> VersionId {
        let capsule = if self.level.is_causal() {
            let mut clock = self
                .peek(key)
                .and_then(|c| c.causal_clock())
                .unwrap_or_default();
            clock.increment(writer);
            // Dependency set: everything this session has read (Algorithm 2
            // semantics); single-key mode tracks no dependencies.
            let mut deps: HashMap<Key, VectorClock> = HashMap::new();
            if self.level != ConsistencyLevel::SingleKeyCausal {
                for (k, vc) in invocation_reads {
                    if k != key {
                        deps.entry(k.clone()).or_default().join_ref(vc);
                    }
                }
                for (k, record) in &session.read_set {
                    if let VersionId::Causal(vc) = &record.version {
                        if k != key {
                            deps.entry(k.clone()).or_default().join_ref(vc);
                        }
                    }
                }
            }
            Capsule::wrap_causal(clock, deps, value)
        } else {
            Capsule::wrap_lww(self.anna.next_timestamp(), value)
        };
        let version = match &capsule {
            Capsule::Lww(l) => VersionId::Lww(l.timestamp),
            Capsule::Causal(c) => VersionId::Causal(c.vector_clock()),
            Capsule::Set(_) => unreachable!("session writes are never set capsules"),
        };
        // Update locally, snapshot for downstream exact-version fetches,
        // then write back to Anna asynchronously via the batched
        // write-behind buffer.
        self.merge_local(key, capsule.clone());
        self.store_snapshot(session.request_id, key, capsule.clone());
        session.record_write(key.clone(), version.clone(), self.addr);
        self.mark_dirty(key, capsule);
        version
    }

    /// Buffer a write for the next batched flush. With the window disabled
    /// it goes straight to Anna, one message per write (the seed path).
    fn mark_dirty(&self, key: &Key, capsule: Capsule) {
        if self.config.write_flush_interval_ms <= 0.0 {
            let _ = self.anna.put_async(key, capsule);
            return;
        }
        let full = {
            let mut dirty = self.dirty.lock();
            match dirty.entries.get_mut(key) {
                Some(pending) => {
                    let before = pending.payload_len();
                    if pending.try_join(capsule.clone()).is_err() {
                        // Kind change (e.g. delete+recreate): latest wins.
                        *pending = capsule;
                    }
                    dirty.bytes += pending.payload_len().saturating_sub(before);
                }
                None => {
                    dirty.bytes += capsule.payload_len();
                    dirty.entries.insert(key.clone(), capsule);
                }
            }
            dirty.bytes >= self.config.max_batch_bytes
        };
        if full {
            self.flush_writes();
        }
    }

    /// Flush the write-behind buffer to Anna as batched `MultiPut`s, chunked
    /// so no single request exceeds the configured byte cap.
    pub fn flush_writes(&self) {
        let drained: Vec<(Key, Capsule)> = {
            let mut dirty = self.dirty.lock();
            dirty.bytes = 0;
            dirty.entries.drain().collect()
        };
        if drained.is_empty() {
            return;
        }
        self.stats.write_flushes.fetch_add(1, Ordering::Relaxed);
        let cap = self.config.max_batch_bytes.max(1);
        let mut chunk: Vec<(Key, Capsule)> = Vec::new();
        let mut chunk_bytes = 0usize;
        for (key, capsule) in drained {
            chunk_bytes += capsule.payload_len();
            chunk.push((key, capsule));
            if chunk_bytes >= cap {
                let _ = self.anna.multi_put_async(std::mem::take(&mut chunk));
                chunk_bytes = 0;
            }
        }
        if !chunk.is_empty() {
            let _ = self.anna.multi_put_async(chunk);
        }
    }

    /// Delete `key` (local eviction + Anna delete). A buffered write-behind
    /// for the key is discarded so the flush cannot resurrect it.
    pub fn delete(&self, key: &Key) {
        self.shard(key).lock().remove(key);
        {
            let mut dirty = self.dirty.lock();
            if let Some(dropped) = dirty.entries.remove(key) {
                dirty.bytes = dirty.bytes.saturating_sub(dropped.payload_len());
            }
        }
        let _ = self.anna.delete(key);
    }

    /// Plain read: local hit, else synchronous fetch from Anna (maintaining
    /// the causal cut in causal modes). Concurrent misses on one key
    /// coalesce into a single KVS fetch (single-flight): the first missing
    /// thread leads the fill, every other thread blocks on the in-flight
    /// slot and receives the same `Arc`'d capsule handle — a thundering herd
    /// on a hot key costs one storage request instead of one per thread.
    pub fn get_or_fetch(&self, key: &Key) -> Option<Capsule> {
        if let Some(c) = self.peek(key) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Some(c);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        if !self.config.single_flight {
            return self.fill(key);
        }
        let (slot, leader) = {
            let mut inflight = self.inflight.lock();
            match inflight.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(FillSlot::default());
                    inflight.insert(key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if leader {
            // Re-check the cache first: a fill that completed between our
            // miss and taking leadership already admitted the capsule, and
            // refetching it would break the M-misses→1-fetch guarantee.
            let result = self.peek(key).or_else(|| self.fill(key));
            // Unregister *before* publishing: a miss arriving after this
            // point leads a fresh fill rather than adopting a stale
            // outcome, and a failed fill never poisons the slot.
            self.inflight.lock().remove(key);
            *slot.state.lock() = Some(result.clone());
            slot.ready.notify_all();
            result
        } else {
            self.stats.coalesced_fills.fetch_add(1, Ordering::Relaxed);
            // The follower parks until the leader publishes; on a pooled
            // worker that must count as a blocking region so a spare keeps
            // the pool live (the leader's fill may itself be queued on it).
            cloudburst_runtime::blocking(|| {
                let mut state = slot.state.lock();
                while state.is_none() {
                    slot.ready.wait(&mut state);
                }
                state.clone().expect("published outcome")
            })
        }
    }

    /// The actual KVS fetch behind a miss. Spread across the key's replicas
    /// (deterministically by VM), which both exploits hot-key selective
    /// replication and exposes the replica-lag staleness that eventual
    /// consistency permits. Errors surface as `None` to the reader; the
    /// next miss retries.
    fn fill(&self, key: &Key) -> Option<Capsule> {
        let capsule = self.anna.get_spread(key, self.vm as usize).ok().flatten()?;
        self.admit(key, capsule.clone());
        Some(capsule)
    }

    /// Drop the locally cached copy of `key` without touching the KVS (the
    /// stored value stays intact — unlike [`CacheInner::delete`]). The next
    /// read misses and refetches.
    pub fn evict(&self, key: &Key) {
        self.shard(key).lock().remove(key);
    }

    /// Warm the cache for all of `keys` with one batched KVS request per
    /// responsible node instead of one sequential round trip per key — the
    /// coalesced fetch executors issue for a function's reference keys
    /// before resolving them. Already-cached keys cost nothing; with fewer
    /// than two missing keys the plain read-through path is used (no
    /// batching win). Returns how many keys were fetched and admitted.
    ///
    /// Prefetched keys are counted in [`CacheStats::prefetched_keys`]; the
    /// subsequent read-through then records a local hit.
    pub fn prefetch(&self, keys: &[Key]) -> usize {
        let mut missing: Vec<Key> = Vec::new();
        for key in keys {
            if !self.contains(key) && !missing.contains(key) {
                missing.push(key.clone());
            }
        }
        if missing.len() < 2 {
            return 0;
        }
        let Ok(results) = self.anna.multi_get_spread(&missing, self.vm as usize) else {
            return 0;
        };
        let mut fetched = 0;
        for (key, capsule) in missing.iter().zip(results) {
            if let Some(capsule) = capsule {
                self.admit(key, capsule);
                fetched += 1;
            }
        }
        self.stats
            .prefetched_keys
            .fetch_add(fetched as u64, Ordering::Relaxed);
        fetched as usize
    }

    /// Look at the locally cached value (records an LRU touch, no fetch).
    /// The returned capsule is a cheap handle — no payload copy; the whole
    /// hit is one hash lookup plus a list splice under the shard lock.
    pub fn peek(&self, key: &Key) -> Option<Capsule> {
        let shard = &mut *self.shard(key).lock();
        let entry = shard.map.get(key)?;
        shard.lru.touch(entry.slot);
        Some(entry.capsule.clone())
    }

    /// All cached keys (for keyset publication and scheduler indexes).
    pub fn cached_keys(&self) -> Vec<Key> {
        let mut keys = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            keys.extend(shard.lock().map.keys().cloned());
        }
        keys
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Admit a capsule fetched from Anna or pushed by it, maintaining the
    /// bolt-on causal cut in causal-cut modes: before a causal version
    /// becomes visible, its dependencies must be present at admissible
    /// versions (§5.3).
    fn admit(&self, key: &Key, capsule: Capsule) {
        if self.level.needs_causal_cut() {
            if let Capsule::Causal(c) = &capsule {
                self.satisfy_dependencies(c.dependencies());
            }
        }
        self.merge_local(key, capsule);
    }

    /// Fetch missing/stale dependencies from Anna, breadth-first, up to the
    /// configured round limit. Bolt-on would buffer the update until the cut
    /// is restorable; bounding the rounds keeps the simulation live and is
    /// documented in DESIGN.md.
    fn satisfy_dependencies(&self, deps: std::collections::BTreeMap<Key, VectorClock>) {
        let mut frontier: Vec<(Key, VectorClock)> = deps.into_iter().collect();
        for _ in 0..self.config.causal_cut_fetch_rounds {
            if frontier.is_empty() {
                return;
            }
            let mut next = Vec::new();
            for (dep_key, required) in frontier.drain(..) {
                let satisfied = self
                    .peek(&dep_key)
                    .and_then(|c| c.causal_clock())
                    .is_some_and(|local| valid(&local, &required));
                if satisfied {
                    continue;
                }
                if let Ok(Some(capsule)) = self.anna.get(&dep_key) {
                    if let Capsule::Causal(c) = &capsule {
                        next.extend(c.dependencies());
                    }
                    self.merge_local(&dep_key, capsule);
                }
            }
            frontier = next;
        }
    }

    pub(crate) fn merge_local(&self, key: &Key, capsule: Capsule) {
        let shard = &mut *self.shard(key).lock();
        match shard.map.get_mut(key) {
            Some(entry) => {
                // Merging into a handle that session snapshots share copies
                // the underlying state first (copy-on-divergence), so those
                // snapshots keep observing their exact version.
                let _ = entry.capsule.try_join(capsule);
                shard.lru.touch(entry.slot);
            }
            None => {
                let slot = shard.lru.insert(key.clone());
                shard.map.insert(key.clone(), CacheEntry { capsule, slot });
                shard.evict_to(self.shard_max);
            }
        }
    }

    fn snapshot_of(&self, request: RequestId, key: &Key) -> Option<Capsule> {
        self.snapshots.lock().get(&request)?.get(key).cloned()
    }

    fn store_snapshot(&self, request: RequestId, key: &Key, capsule: Capsule) {
        self.snapshots
            .lock()
            .entry(request)
            .or_default()
            .insert(key.clone(), capsule);
    }

    /// Snapshot the *dependencies* of a read version too: "caches upstream
    /// store version snapshots of these causal dependencies" (§5.3).
    fn snapshot_dependencies(&self, request: RequestId, capsule: &Capsule) {
        if self.level != ConsistencyLevel::DistributedSessionCausal {
            return;
        }
        for (dep_key, _) in capsule.causal_dependencies() {
            if let Some(dep) = self.peek(&dep_key) {
                self.store_snapshot(request, &dep_key, dep);
            }
        }
    }

    fn fetch_from_upstream(
        &self,
        upstream: Address,
        request: RequestId,
        key: &Key,
    ) -> Option<Capsule> {
        self.stats
            .upstream_fetches_issued
            .fetch_add(1, Ordering::Relaxed);
        if upstream == self.addr {
            // We are the upstream cache; answer locally.
            return self
                .snapshot_of(request, key)
                .or_else(|| self.peek(key))
                .or_else(|| self.anna.get(key).ok().flatten());
        }
        let (reply, waiter) = reply_channel::<Option<Capsule>>(&self.net);
        self.net
            .send(
                self.addr,
                upstream,
                CacheRequest::Fetch {
                    request_id: request,
                    key: key.clone(),
                    reply,
                },
            )
            .ok()?;
        waiter.wait_timeout(Duration::from_secs(10)).ok().flatten()
    }

    /// Evict all version snapshots of a completed session.
    pub fn complete_session(&self, request: RequestId) {
        self.snapshots.lock().remove(&request);
    }

    // ------------------------------------------------------------------
    // Server actor
    // ------------------------------------------------------------------

    /// Publish the cached keyset to Anna and every scheduler's own
    /// cached-key index (§4.3).
    fn publish_keyset(&self) {
        let keys = self.cached_keys();
        let _ = self.anna.register_cached_keys(self.addr, &keys);
        for scheduler in self.topology.schedulers() {
            let _ = self.net.send(
                self.addr,
                scheduler,
                crate::scheduler::SchedulerRequest::CacheKeyset {
                    vm: self.vm,
                    keys: keys.clone(),
                },
            );
        }
    }

    /// Dispatch one received envelope; returns `true` on shutdown. Anna's
    /// coalesced pushes arrive as [`Batch`] envelopes and are unwrapped
    /// element-wise; bare messages keep working (window-zero nodes and
    /// direct sends).
    fn on_envelope(&self, envelope: cloudburst_net::Envelope) -> bool {
        match envelope.downcast::<CacheRequest>() {
            Ok(request) => self.on_request(request),
            Err(envelope) => match envelope.downcast::<KeyUpdate>() {
                Ok(update) => {
                    self.on_update(update);
                    false
                }
                Err(envelope) => {
                    let Ok(batch) = envelope.downcast::<Batch>() else {
                        return false; // foreign message; ignore
                    };
                    let mut stop = false;
                    for item in batch {
                        match item.downcast::<KeyUpdate>() {
                            Ok(update) => self.on_update(*update),
                            Err(item) => {
                                if let Ok(request) = item.downcast::<CacheRequest>() {
                                    stop |= self.on_request(*request);
                                }
                            }
                        }
                    }
                    stop
                }
            },
        }
    }

    /// Handle one cache-protocol request; returns `true` on shutdown.
    fn on_request(&self, request: CacheRequest) -> bool {
        match request {
            CacheRequest::Fetch {
                request_id,
                key,
                reply,
            } => {
                self.stats
                    .upstream_fetches_served
                    .fetch_add(1, Ordering::Relaxed);
                let capsule = self
                    .snapshot_of(request_id, &key)
                    .or_else(|| self.peek(&key))
                    .or_else(|| self.anna.get(&key).ok().flatten());
                reply.reply(capsule);
                false
            }
            CacheRequest::SessionComplete { request_id } => {
                self.complete_session(request_id);
                false
            }
            CacheRequest::Shutdown => true,
        }
    }

    /// Apply one pushed key update. Only keys we actually hold are
    /// refreshed; a push for an evicted key would re-grow the cache.
    fn on_update(&self, update: KeyUpdate) {
        if self.contains(&update.key) {
            self.admit(&update.key, update.capsule);
        }
    }
}

/// The cache's server actor: receives pushed [`KeyUpdate`]s and
/// cache-protocol requests, and carries the write-behind flush and keyset
/// publication cadences on the runtime's timer heap.
struct CacheServer {
    inner: Arc<CacheInner>,
    endpoint: Endpoint,
    flush_enabled: bool,
    flush_interval: Duration,
    publish_interval: Duration,
    next_flush: Instant,
    next_publish: Instant,
}

/// Per-poll mailbox budget: bound one poll's work so co-scheduled actors on
/// the shared pool stay live under a push storm.
const SERVER_POLL_BUDGET: usize = 128;

impl Actor for CacheServer {
    fn poll(&mut self, ctx: &mut ActorCtx<'_>) -> Poll {
        if self.inner.shutdown.load(Ordering::Acquire) {
            self.inner.flush_writes();
            return Poll::Shutdown;
        }
        let mut budget = SERVER_POLL_BUDGET;
        let mut drained = 0usize;
        while budget > 0 {
            let Some(envelope) = self.endpoint.try_recv() else {
                break;
            };
            drained += 1;
            budget -= 1;
            if self.inner.on_envelope(envelope) {
                self.inner.flush_writes();
                return Poll::Shutdown;
            }
        }
        ctx.note_mailbox_depth(drained);
        // lint: allow(L003): cadence checks against the armed flush/publish deadlines
        let now = Instant::now();
        if self.flush_enabled && now >= self.next_flush {
            self.next_flush = now + self.flush_interval;
            self.inner.flush_writes();
        }
        if now >= self.next_publish {
            self.next_publish = now + self.publish_interval;
            self.inner.publish_keyset();
        }
        if budget == 0 {
            return Poll::Yield;
        }
        let deadline = if self.flush_enabled {
            self.next_flush.min(self.next_publish)
        } else {
            self.next_publish
        };
        Poll::Idle(Some(deadline))
    }
}

/// Algorithm 2's `valid` predicate: the local version is admissible if it is
/// concurrent with or dominates the required version — i.e. not causally
/// older.
fn valid(local: &VectorClock, required: &VectorClock) -> bool {
    !required.dominates(local)
}

impl std::fmt::Debug for CacheInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheInner")
            .field("vm", &self.vm)
            .field("addr", &self.addr)
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_anna::{AnnaCluster, AnnaConfig};
    use cloudburst_net::NetworkConfig;

    /// One pooled runtime shared by every test in this module; worker
    /// threads outlive individual tests, which is fine for a test process.
    fn test_runtime() -> &'static ActorRuntime {
        static RT: std::sync::OnceLock<ActorRuntime> = std::sync::OnceLock::new();
        RT.get_or_init(|| ActorRuntime::new(cloudburst_runtime::RuntimeConfig::default()))
    }

    fn setup(level: ConsistencyLevel) -> (Network, AnnaCluster, VmCache) {
        let net = Network::new(NetworkConfig::instant());
        let anna = AnnaCluster::launch(
            &net,
            AnnaConfig {
                nodes: 2,
                replication: 1,
                durability: cloudburst_anna::Durability::Off,
                ..AnnaConfig::default()
            },
        );
        let cache = VmCache::spawn(
            test_runtime(),
            1,
            &net,
            anna.client(),
            Arc::new(Topology::new()),
            level,
            CacheConfig::default(),
        );
        (net, anna, cache)
    }

    #[test]
    fn miss_then_hit() {
        let (_net, anna, cache) = setup(ConsistencyLevel::Lww);
        let client = anna.client();
        let key = Key::new("k");
        client.put_lww(&key, Bytes::from_static(b"v")).unwrap();
        let inner = cache.inner();
        assert!(!inner.contains(&key));
        let c = inner.get_or_fetch(&key).unwrap();
        assert_eq!(c.read_value().as_ref(), b"v");
        assert!(inner.contains(&key));
        assert_eq!(inner.stats.misses.load(Ordering::Relaxed), 1);
        inner.get_or_fetch(&key).unwrap();
        assert_eq!(inner.stats.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn put_session_writes_back_to_anna() {
        let (_net, anna, cache) = setup(ConsistencyLevel::Lww);
        let inner = cache.inner();
        let key = Key::new("w");
        let mut session = SessionMeta::new(1, ConsistencyLevel::Lww);
        inner.put_session(&key, Bytes::from_static(b"out"), &mut session, 9, &[]);
        // Async write-back: poll Anna.
        let client = anna.client();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            if let Some(c) = client.get(&key).unwrap() {
                assert_eq!(c.read_value().as_ref(), b"out");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "write-back never arrived"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn repeatable_read_returns_snapshot_despite_new_writes() {
        let (_net, anna, cache) = setup(ConsistencyLevel::RepeatableRead);
        let client = anna.client();
        let inner = cache.inner();
        let key = Key::new("rr");
        client.put_lww(&key, Bytes::from_static(b"v1")).unwrap();

        let mut session = SessionMeta::new(7, ConsistencyLevel::RepeatableRead);
        let first = inner.get_session(&key, &mut session).unwrap();
        assert_eq!(first.read_value().as_ref(), b"v1");

        // A new version lands in Anna and even in the local cache.
        client.put_lww(&key, Bytes::from_static(b"v2")).unwrap();
        inner.merge_local(&key, client.get(&key).unwrap().unwrap());

        // The same session must still see v1 (the snapshot).
        let again = inner.get_session(&key, &mut session).unwrap();
        assert_eq!(again.read_value().as_ref(), b"v1");

        // A fresh session sees the new version.
        let mut fresh = SessionMeta::new(8, ConsistencyLevel::RepeatableRead);
        let now = inner.get_session(&key, &mut fresh).unwrap();
        assert_eq!(now.read_value().as_ref(), b"v2");
    }

    #[test]
    fn session_completion_evicts_snapshots() {
        let (_net, anna, cache) = setup(ConsistencyLevel::RepeatableRead);
        let client = anna.client();
        let inner = cache.inner();
        let key = Key::new("rr2");
        client.put_lww(&key, Bytes::from_static(b"v1")).unwrap();
        let mut session = SessionMeta::new(9, ConsistencyLevel::RepeatableRead);
        inner.get_session(&key, &mut session).unwrap();
        assert!(inner.snapshot_of(9, &key).is_some());
        inner.complete_session(9);
        assert!(inner.snapshot_of(9, &key).is_none());
    }

    #[test]
    fn cross_cache_rr_fetches_exact_version_from_upstream() {
        let net = Network::new(NetworkConfig::instant());
        let anna = AnnaCluster::launch(
            &net,
            AnnaConfig {
                nodes: 2,
                replication: 1,
                durability: cloudburst_anna::Durability::Off,
                ..AnnaConfig::default()
            },
        );
        let topo = Arc::new(Topology::new());
        let up = VmCache::spawn(
            test_runtime(),
            1,
            &net,
            anna.client(),
            Arc::clone(&topo),
            ConsistencyLevel::RepeatableRead,
            CacheConfig::default(),
        );
        let down = VmCache::spawn(
            test_runtime(),
            2,
            &net,
            anna.client(),
            topo,
            ConsistencyLevel::RepeatableRead,
            CacheConfig::default(),
        );
        let client = anna.client();
        let key = Key::new("shared");
        client.put_lww(&key, Bytes::from_static(b"v1")).unwrap();

        // Function 1 reads on the upstream VM.
        let mut session = SessionMeta::new(42, ConsistencyLevel::RepeatableRead);
        let v1 = up.inner().get_session(&key, &mut session).unwrap();
        assert_eq!(v1.read_value().as_ref(), b"v1");

        // A newer version lands; the downstream cache would naturally see v2.
        client.put_lww(&key, Bytes::from_static(b"v2")).unwrap();

        // Function 2, same session, different VM: must see v1 via upstream
        // snapshot fetch.
        let v_again = down.inner().get_session(&key, &mut session).unwrap();
        assert_eq!(v_again.read_value().as_ref(), b"v1");
        assert!(
            down.inner()
                .stats
                .upstream_fetches_issued
                .load(Ordering::Relaxed)
                >= 1
        );
    }

    #[test]
    fn causal_session_fetches_dependency_snapshots() {
        use cloudburst_lattice::VectorClock;
        let net = Network::new(NetworkConfig::instant());
        let anna = AnnaCluster::launch(
            &net,
            AnnaConfig {
                nodes: 2,
                replication: 1,
                durability: cloudburst_anna::Durability::Off,
                ..AnnaConfig::default()
            },
        );
        let level = ConsistencyLevel::DistributedSessionCausal;
        let topo = Arc::new(Topology::new());
        let up = VmCache::spawn(
            test_runtime(),
            1,
            &net,
            anna.client(),
            Arc::clone(&topo),
            level,
            CacheConfig::default(),
        );
        let down = VmCache::spawn(
            test_runtime(),
            2,
            &net,
            anna.client(),
            topo,
            level,
            CacheConfig::default(),
        );
        let client = anna.client();

        // l@(9,1); k depends on l@(9,1). Write them to Anna.
        let l = Key::new("l");
        let k = Key::new("k");
        client
            .put_causal(
                &l,
                VectorClock::singleton(9, 1),
                [],
                Bytes::from_static(b"l-new"),
            )
            .unwrap();
        client
            .put_causal(
                &k,
                VectorClock::singleton(5, 1),
                [(l.clone(), VectorClock::singleton(9, 1))],
                Bytes::from_static(b"k-val"),
            )
            .unwrap();

        // Downstream cache holds a *stale* l (vc (9,0) < (9,1))… actually
        // pre-seed with an older concurrent-free version: (9,0) is encoded
        // as clock singleton with smaller counter.
        down.inner().merge_local(
            &l,
            Capsule::wrap_causal(VectorClock::new(), [], Bytes::from_static(b"l-old")),
        );

        // Upstream reads k: session records k's deps (l ≥ (9,1)).
        let mut session = SessionMeta::new(77, level);
        let kv = up.inner().get_session(&k, &mut session).unwrap();
        assert_eq!(kv.read_value().as_ref(), b"k-val");
        assert!(session.dependencies.contains_key(&l));

        // Downstream reads l: its local copy is causally older than the
        // required version → must fetch the admissible version upstream.
        let lv = down.inner().get_session(&l, &mut session).unwrap();
        assert_eq!(lv.read_value().as_ref(), b"l-new");
    }

    #[test]
    fn key_update_push_refreshes_held_keys_only() {
        let (net, anna, cache) = setup(ConsistencyLevel::Lww);
        let client = anna.client();
        let inner = cache.inner();
        let held = Key::new("held");
        let not_held = Key::new("not-held");
        client.put_lww(&held, Bytes::from_static(b"v1")).unwrap();
        inner.get_or_fetch(&held).unwrap();

        // Simulate Anna pushes.
        let pusher = net.register();
        let ts = client.next_timestamp();
        pusher
            .send(
                inner.addr(),
                KeyUpdate {
                    key: held.clone(),
                    capsule: Capsule::wrap_lww(ts, Bytes::from_static(b"v2")),
                },
            )
            .unwrap();
        let ts2 = client.next_timestamp();
        pusher
            .send(
                inner.addr(),
                KeyUpdate {
                    key: not_held.clone(),
                    capsule: Capsule::wrap_lww(ts2, Bytes::from_static(b"x")),
                },
            )
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            if inner.peek(&held).map(|c| c.read_value()) == Some(Bytes::from_static(b"v2")) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "push never applied");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(!inner.contains(&not_held), "must not admit unheld keys");
    }

    #[test]
    fn concurrent_misses_coalesce_into_one_storage_fetch() {
        // M threads missing the same cold key must produce exactly one
        // Anna fetch (counted at the storage nodes), with every waiter
        // observing the same capsule.
        let (_net, anna, cache) = setup(ConsistencyLevel::Lww);
        let client = anna.client();
        let inner = cache.inner();
        let key = Key::new("herd");
        client.put_lww(&key, Bytes::from_static(b"hot")).unwrap();
        let gets_before: u64 = client
            .cluster_stats()
            .unwrap()
            .iter()
            .map(|s| s.gets_served)
            .sum();
        const HERD: usize = 8;
        let barrier = std::sync::Barrier::new(HERD);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..HERD {
                let inner = Arc::clone(&inner);
                let barrier = &barrier;
                let key = key.clone();
                handles.push(scope.spawn(move || {
                    barrier.wait();
                    inner.get_or_fetch(&key).expect("stored value")
                }));
            }
            for h in handles {
                assert_eq!(h.join().unwrap().read_value().as_ref(), b"hot");
            }
        });
        let gets_after: u64 = client
            .cluster_stats()
            .unwrap()
            .iter()
            .map(|s| s.gets_served)
            .sum();
        assert_eq!(
            gets_after - gets_before,
            1,
            "thundering herd must collapse to a single storage fetch"
        );
    }

    #[test]
    fn herd_without_single_flight_issues_independent_fetches() {
        // The seed behaviour, kept behind `single_flight: false` as the
        // bench baseline: concurrent misses each fetch on their own.
        let net = Network::new(NetworkConfig::instant());
        let anna = AnnaCluster::launch(
            &net,
            AnnaConfig {
                nodes: 2,
                replication: 1,
                durability: cloudburst_anna::Durability::Off,
                ..AnnaConfig::default()
            },
        );
        let cache = VmCache::spawn(
            test_runtime(),
            1,
            &net,
            anna.client(),
            Arc::new(Topology::new()),
            ConsistencyLevel::Lww,
            CacheConfig {
                single_flight: false,
                ..CacheConfig::default()
            },
        );
        let client = anna.client();
        let inner = cache.inner();
        let key = Key::new("herd-base");
        client.put_lww(&key, Bytes::from_static(b"hot")).unwrap();
        const HERD: usize = 8;
        let barrier = std::sync::Barrier::new(HERD);
        std::thread::scope(|scope| {
            for _ in 0..HERD {
                let inner = Arc::clone(&inner);
                let barrier = &barrier;
                let key = key.clone();
                scope.spawn(move || {
                    barrier.wait();
                    inner.get_or_fetch(&key).expect("stored value");
                });
            }
        });
        assert_eq!(
            inner.stats.coalesced_fills.load(Ordering::Relaxed),
            0,
            "disabled single-flight must never coalesce"
        );
    }

    #[test]
    fn failed_fill_propagates_to_all_waiters_without_poisoning() {
        // Every thread in a herd whose fill fails (storage down) gets the
        // failure; the slot is released, and once storage recovers the next
        // read succeeds — a failed fill never wedges the key.
        let net = Network::new(NetworkConfig::instant());
        let anna = AnnaCluster::launch(
            &net,
            AnnaConfig {
                nodes: 1,
                replication: 1,
                durability: cloudburst_anna::Durability::Off,
                ..AnnaConfig::default()
            },
        );
        let cache = VmCache::spawn(
            test_runtime(),
            1,
            &net,
            anna.client(),
            Arc::new(Topology::new()),
            ConsistencyLevel::Lww,
            CacheConfig::default(),
        );
        let inner = cache.inner();
        let key = Key::new("doomed");
        assert!(anna.crash_node(0), "crash the only storage node");
        const HERD: usize = 4;
        let barrier = std::sync::Barrier::new(HERD);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..HERD {
                let inner = Arc::clone(&inner);
                let barrier = &barrier;
                let key = key.clone();
                handles.push(scope.spawn(move || {
                    barrier.wait();
                    inner.get_or_fetch(&key)
                }));
            }
            for h in handles {
                assert!(
                    h.join().unwrap().is_none(),
                    "a failed fill must propagate to every waiter"
                );
            }
        });
        assert!(
            inner.inflight.lock().is_empty(),
            "failed fill must release the in-flight slot"
        );
        // Storage recovers (a fresh node takes over the ring); the same key
        // is immediately fetchable again.
        anna.add_node();
        let client = anna.client();
        client.put_lww(&key, Bytes::from_static(b"alive")).unwrap();
        let revived = inner.get_or_fetch(&key).expect("slot must not be poisoned");
        assert_eq!(revived.read_value().as_ref(), b"alive");
    }

    #[test]
    fn evict_drops_local_copy_but_not_stored_value() {
        let (_net, anna, cache) = setup(ConsistencyLevel::Lww);
        let client = anna.client();
        let inner = cache.inner();
        let key = Key::new("evictable");
        client.put_lww(&key, Bytes::from_static(b"v")).unwrap();
        inner.get_or_fetch(&key).unwrap();
        assert!(inner.contains(&key));
        inner.evict(&key);
        assert!(!inner.contains(&key));
        // Unlike delete(), the KVS copy survives and a re-read refills.
        assert_eq!(
            inner.get_or_fetch(&key).unwrap().read_value().as_ref(),
            b"v"
        );
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let net = Network::new(NetworkConfig::instant());
        let anna = AnnaCluster::launch(
            &net,
            AnnaConfig {
                nodes: 1,
                replication: 1,
                durability: cloudburst_anna::Durability::Off,
                ..AnnaConfig::default()
            },
        );
        let cache = VmCache::spawn(
            test_runtime(),
            1,
            &net,
            anna.client(),
            Arc::new(Topology::new()),
            ConsistencyLevel::Lww,
            CacheConfig {
                max_entries: 4,
                // Exact global LRU order is only defined with a single
                // stripe; multi-shard eviction is covered by the stress test.
                shards: 1,
                ..CacheConfig::default()
            },
        );
        let client = anna.client();
        let inner = cache.inner();
        for i in 0..10 {
            let key = Key::new(format!("k{i}"));
            client.put_lww(&key, Bytes::from_static(b"v")).unwrap();
            inner.get_or_fetch(&key).unwrap();
        }
        assert_eq!(inner.len(), 4);
        // The most recently used keys survive.
        assert!(inner.contains(&Key::new("k9")));
        assert!(!inner.contains(&Key::new("k0")));
    }

    #[test]
    fn sharded_cache_concurrent_churn_stays_consistent() {
        // Hammer the sharded cache from many threads over overlapping keys:
        // reads, writes, deletes, and evictions race across stripes. The
        // invariants checked: no lost stats (hits+misses == reads issued),
        // the entry count respects the configured capacity, and every
        // surviving entry is readable with an intact payload.
        let net = Network::new(NetworkConfig::instant());
        let anna = AnnaCluster::launch(
            &net,
            AnnaConfig {
                nodes: 2,
                replication: 1,
                durability: cloudburst_anna::Durability::Off,
                ..AnnaConfig::default()
            },
        );
        let cache = VmCache::spawn(
            test_runtime(),
            1,
            &net,
            anna.client(),
            Arc::new(Topology::new()),
            ConsistencyLevel::Lww,
            CacheConfig {
                max_entries: 64,
                shards: 8,
                ..CacheConfig::default()
            },
        );
        let client = anna.client();
        const KEYS: usize = 96; // > max_entries → eviction under contention
        for i in 0..KEYS {
            client
                .put_lww(&Key::new(format!("k{i}")), Bytes::from_static(b"seed"))
                .unwrap();
        }
        let inner = cache.inner();
        const THREADS: usize = 8;
        const OPS: usize = 400;
        let reads_issued = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let inner = Arc::clone(&inner);
                let reads_issued = Arc::clone(&reads_issued);
                scope.spawn(move || {
                    let mut session = SessionMeta::new(1000 + t as u64, ConsistencyLevel::Lww);
                    for op in 0..OPS {
                        let key = Key::new(format!("k{}", (op * (t + 3)) % KEYS));
                        match op % 5 {
                            0 | 1 => {
                                // A concurrent delete may have removed the key
                                // everywhere; both outcomes count as one read
                                // for the stats invariant.
                                if let Some(c) = inner.get_or_fetch(&key) {
                                    assert_eq!(c.read_value().len(), 4, "payload torn");
                                }
                                reads_issued.fetch_add(1, Ordering::Relaxed);
                            }
                            2 => {
                                inner.put_session(
                                    &key,
                                    Bytes::from_static(b"newv"),
                                    &mut session,
                                    t as u64,
                                    &[],
                                );
                            }
                            3 => {
                                inner.peek(&key);
                            }
                            _ => {
                                // Exercise slot freeing racing inserts and
                                // touches on the same stripe, then re-seed so
                                // later reads mostly still find the key.
                                inner.delete(&key);
                                inner.put_session(
                                    &key,
                                    Bytes::from_static(b"redo"),
                                    &mut session,
                                    t as u64,
                                    &[],
                                );
                            }
                        }
                    }
                });
            }
        });
        let hits = inner.stats.hits.load(Ordering::Relaxed);
        let misses = inner.stats.misses.load(Ordering::Relaxed);
        assert_eq!(
            hits + misses,
            reads_issued.load(Ordering::Relaxed),
            "stats lost under contention"
        );
        assert!(
            inner.len() <= 64,
            "capacity exceeded: {} entries",
            inner.len()
        );
        assert_eq!(inner.cached_keys().len(), inner.len());
        // LRU state stays coherent after the churn: every cached key is
        // still readable and evictions continue to work.
        for key in inner.cached_keys() {
            assert!(inner.peek(&key).is_some());
        }
    }
}

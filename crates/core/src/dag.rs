//! DAG registration: function compositions "in the style of systems like
//! Apache Spark, Dryad, Apache Airflow, and TensorFlow" (paper §3).

use std::collections::HashMap;
use std::fmt;

/// A node in a DAG: one registered function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagNode {
    /// The registered function this node invokes.
    pub function: String,
}

/// A registered composition of functions. Results are automatically passed
/// from one DAG function to the next by the runtime; the result of a function
/// with no successor is returned to the user or stored in the KVS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagSpec {
    /// Unique DAG name.
    pub name: String,
    /// Nodes (functions).
    pub nodes: Vec<DagNode>,
    /// Directed edges `(from, to)` as node indices.
    pub edges: Vec<(usize, usize)>,
}

/// Errors detected at DAG registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The DAG has no nodes.
    Empty,
    /// An edge referenced a node index out of range.
    BadEdge(usize, usize),
    /// A self-loop or duplicate edge.
    InvalidEdge(usize, usize),
    /// The edge set contains a cycle.
    Cyclic,
    /// A node references a function that is not registered.
    UnknownFunction(String),
    /// No DAG with this name has been registered.
    UnknownDag(String),
    /// The KVS could not be reached to verify the DAG's functions —
    /// distinct from [`DagError::UnknownFunction`] so an infrastructure
    /// failure is never misreported as a missing registration.
    Storage(String),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => f.write_str("DAG has no nodes"),
            Self::BadEdge(a, b) => write!(f, "edge ({a},{b}) references a missing node"),
            Self::InvalidEdge(a, b) => write!(f, "edge ({a},{b}) is a self-loop or duplicate"),
            Self::Cyclic => f.write_str("DAG contains a cycle"),
            Self::UnknownFunction(name) => write!(f, "function {name:?} is not registered"),
            Self::UnknownDag(name) => write!(f, "DAG {name:?} is not registered"),
            Self::Storage(e) => write!(f, "function verification failed: {e}"),
        }
    }
}

impl std::error::Error for DagError {}

impl DagSpec {
    /// A linear chain `f0 → f1 → …` (the shape RR consistency assumes, §5.1).
    pub fn linear(name: impl Into<String>, functions: &[&str]) -> Self {
        Self {
            name: name.into(),
            nodes: functions
                .iter()
                .map(|f| DagNode {
                    function: (*f).to_string(),
                })
                .collect(),
            edges: (1..functions.len()).map(|i| (i - 1, i)).collect(),
        }
    }

    /// Validate the topology (shape only; function existence is checked by
    /// the scheduler against the registry, §4.3).
    pub fn validate(&self) -> Result<(), DagError> {
        if self.nodes.is_empty() {
            return Err(DagError::Empty);
        }
        let n = self.nodes.len();
        let mut seen = HashMap::new();
        for &(a, b) in &self.edges {
            if a >= n || b >= n {
                return Err(DagError::BadEdge(a, b));
            }
            if a == b || seen.insert((a, b), ()).is_some() {
                return Err(DagError::InvalidEdge(a, b));
            }
        }
        if self.topological_order().is_none() {
            return Err(DagError::Cyclic);
        }
        Ok(())
    }

    /// In-degree of every node.
    pub fn indegrees(&self) -> Vec<usize> {
        let mut deg = vec![0; self.nodes.len()];
        for &(_, b) in &self.edges {
            deg[b] += 1;
        }
        deg
    }

    /// Nodes with no predecessors (triggered first by the scheduler).
    pub fn sources(&self) -> Vec<usize> {
        self.indegrees()
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (d == 0).then_some(i))
            .collect()
    }

    /// Nodes with no successors (their results go to the client / KVS).
    pub fn sinks(&self) -> Vec<usize> {
        let mut has_out = vec![false; self.nodes.len()];
        for &(a, _) in &self.edges {
            has_out[a] = true;
        }
        has_out
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| (!o).then_some(i))
            .collect()
    }

    /// Downstream neighbors of `node`.
    pub fn successors(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| (a == node).then_some(b))
            .collect()
    }

    /// A topological order, or `None` if cyclic (Kahn's algorithm).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut deg = self.indegrees();
        let mut queue: Vec<usize> = deg
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (d == 0).then_some(i))
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(node) = queue.pop() {
            order.push(node);
            for succ in self.successors(node) {
                deg[succ] -= 1;
                if deg[succ] == 0 {
                    queue.push(succ);
                }
            }
        }
        (order.len() == self.nodes.len()).then_some(order)
    }

    /// Whether the DAG is a linear chain (required by the repeatable-read
    /// guarantee, which "assumes sequences of functions — i.e., linear
    /// DAGs", §5.1).
    pub fn is_linear(&self) -> bool {
        let deg_in = self.indegrees();
        let mut deg_out = vec![0; self.nodes.len()];
        for &(a, _) in &self.edges {
            deg_out[a] += 1;
        }
        deg_in.iter().all(|&d| d <= 1)
            && deg_out.iter().all(|&d| d <= 1)
            && self.edges.len() + 1 == self.nodes.len()
    }

    /// The length of the longest path, in nodes (used to normalize latencies
    /// per DAG depth as in Figure 8).
    pub fn depth(&self) -> usize {
        let Some(order) = self.topological_order() else {
            return 0;
        };
        let mut dist = vec![1usize; self.nodes.len()];
        for &node in &order {
            for succ in self.successors(node) {
                dist[succ] = dist[succ].max(dist[node] + 1);
            }
        }
        dist.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DagSpec {
        DagSpec {
            name: "diamond".into(),
            nodes: (0..4)
                .map(|i| DagNode {
                    function: format!("f{i}"),
                })
                .collect(),
            edges: vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        }
    }

    #[test]
    fn linear_constructor() {
        let d = DagSpec::linear("chain", &["inc", "square"]);
        d.validate().unwrap();
        assert!(d.is_linear());
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![1]);
        assert_eq!(d.depth(), 2);
    }

    #[test]
    fn single_node_dag() {
        let d = DagSpec::linear("one", &["f"]);
        d.validate().unwrap();
        assert!(d.is_linear());
        assert_eq!(d.depth(), 1);
        assert_eq!(d.sources(), d.sinks());
    }

    #[test]
    fn diamond_properties() {
        let d = diamond();
        d.validate().unwrap();
        assert!(!d.is_linear());
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![3]);
        assert_eq!(d.depth(), 3);
        assert_eq!(d.successors(0), vec![1, 2]);
        assert_eq!(d.indegrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut d = DagSpec::linear("c", &["a", "b"]);
        d.edges.push((1, 0));
        assert_eq!(d.validate().unwrap_err(), DagError::Cyclic);
    }

    #[test]
    fn bad_edges_are_rejected() {
        let mut d = DagSpec::linear("c", &["a", "b"]);
        d.edges.push((0, 9));
        assert_eq!(d.validate().unwrap_err(), DagError::BadEdge(0, 9));
        let mut d = DagSpec::linear("c", &["a", "b"]);
        d.edges.push((0, 0));
        assert_eq!(d.validate().unwrap_err(), DagError::InvalidEdge(0, 0));
        let mut d = DagSpec::linear("c", &["a", "b"]);
        d.edges.push((0, 1));
        assert_eq!(d.validate().unwrap_err(), DagError::InvalidEdge(0, 1));
    }

    #[test]
    fn empty_dag_is_rejected() {
        let d = DagSpec {
            name: "empty".into(),
            nodes: vec![],
            edges: vec![],
        };
        assert_eq!(d.validate().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn topological_order_respects_edges() {
        let d = diamond();
        let order = d.topological_order().unwrap();
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &(a, b) in &d.edges {
            assert!(pos[&a] < pos[&b], "edge ({a},{b}) violated");
        }
    }
}

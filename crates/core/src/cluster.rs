//! [`CloudburstCluster`]: assembling the full system in-process.
//!
//! One cluster = an Anna storage tier + `vms` function-execution VMs (each a
//! co-located cache plus `executors_per_vm` executor threads) + schedulers +
//! the optional monitoring/autoscaling engine, all attached to one simulated
//! network (paper Figure 3).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cloudburst_anna::elastic::{ElasticConfig, ElasticHandle, ScaleTimeline};
use cloudburst_anna::metrics as mkeys;
use cloudburst_anna::{AnnaClient, AnnaCluster, AnnaConfig};
use cloudburst_net::{Network, NetworkConfig, Site};
use cloudburst_runtime::{Runtime as ActorRuntime, RuntimeConfig, RuntimeStats};
use parking_lot::Mutex;

use crate::cache::{CacheConfig, VmCache};
use crate::client::CloudburstClient;
use crate::consistency::anomaly::TraceSink;
use crate::executor::{ExecutorConfig, ExecutorHandle, ExecutorRequest};
use crate::function::FunctionRegistry;
use crate::monitor::{ComputeScaler, MonitorConfig, MonitorHandle};
use crate::scheduler::{SchedulerConfig, SchedulerHandle, SchedulerRequest};
use crate::topology::Topology;
use crate::types::{ConsistencyLevel, VmId};

/// Full-cluster configuration.
#[derive(Debug, Clone)]
pub struct CloudburstConfig {
    /// Simulated-network parameters, including the delivery-runtime knobs:
    /// `net.deterministic` pins the whole cluster's fabric to the
    /// single-threaded replayable mode, `net.delivery_threads` sizes the
    /// sharded dispatcher pool otherwise.
    pub net: NetworkConfig,
    /// Anna storage-tier parameters. `anna.net` is ignored here — the
    /// cluster's single fabric is built from `net` above. `anna.runtime` is
    /// likewise ignored: both tiers' actors share the one pool sized by
    /// `runtime` below.
    pub anna: AnnaConfig,
    /// Actor-runtime parameters for the shared worker pool that runs every
    /// storage node, executor, cache server, and scheduler. `CB_RUNTIME`
    /// overrides the resolved mode at launch.
    pub runtime: RuntimeConfig,
    /// Initial number of function-execution VMs.
    pub vms: usize,
    /// Executor threads per VM ("3 cores for Python execution and 1 for the
    /// cache", §6).
    pub executors_per_vm: usize,
    /// Number of schedulers.
    pub schedulers: usize,
    /// Deployment consistency level (§5).
    pub level: ConsistencyLevel,
    /// Cache parameters.
    pub cache: CacheConfig,
    /// Executor parameters.
    pub executor: ExecutorConfig,
    /// Scheduler parameters.
    pub scheduler: SchedulerConfig,
    /// Monitor/autoscaler parameters; `None` disables autoscaling.
    pub monitor: Option<MonitorConfig>,
    /// Storage-tier elasticity parameters (closed-loop hot-key replication
    /// + storage-node autoscaling); `None` disables the loop.
    pub elastic: Option<ElasticConfig>,
    /// Anomaly trace sink (Table 2 experiments).
    pub trace: Option<TraceSink>,
}

impl Default for CloudburstConfig {
    fn default() -> Self {
        Self {
            net: NetworkConfig::default(),
            anna: AnnaConfig::default(),
            runtime: RuntimeConfig::default(),
            vms: 2,
            executors_per_vm: 3,
            schedulers: 1,
            level: ConsistencyLevel::Lww,
            cache: CacheConfig::default(),
            executor: ExecutorConfig::default(),
            scheduler: SchedulerConfig::default(),
            monitor: None,
            elastic: None,
            trace: None,
        }
    }
}

impl CloudburstConfig {
    /// A minimal, latency-free configuration for logic tests.
    pub fn instant() -> Self {
        Self {
            net: NetworkConfig::instant(),
            anna: AnnaConfig {
                nodes: 2,
                replication: 1,
                durability: cloudburst_anna::Durability::Off,
                ..AnnaConfig::default()
            },
            ..Self::default()
        }
    }
}

struct VmHandle {
    cache: VmCache,
    executors: Vec<ExecutorHandle>,
    /// Addresses of the KVS client endpoints the cache and executors write
    /// through. A VM crash must kill these too, or the "dead" VM would keep
    /// publishing metrics and flushing writes into Anna.
    kvs_addrs: Vec<cloudburst_net::Address>,
}

struct ClusterInner {
    net: Network,
    /// The shared actor runtime both tiers' event-loop actors run on.
    runtime: ActorRuntime,
    anna_directory: Arc<cloudburst_anna::Directory>,
    topology: Arc<Topology>,
    registry: FunctionRegistry,
    level: ConsistencyLevel,
    cache_config: CacheConfig,
    executor_config: ExecutorConfig,
    trace: Option<TraceSink>,
    // lock-rank: 10 cb-vms
    vms: Mutex<HashMap<VmId, VmHandle>>,
    next_vm: AtomicU64,
    next_executor: AtomicU64,
    executors_per_vm: usize,
    /// Regions the compute tier spans (mirrors `AnnaConfig::regions` — one
    /// deployment, one region set). VMs are placed round-robin by VM id, so
    /// a VM keeps its region across monitor-driven churn.
    regions: usize,
}

impl ClusterInner {
    fn anna_client(&self) -> AnnaClient {
        AnnaClient::new(&self.net, Arc::clone(&self.anna_directory))
    }

    fn anna_client_in(&self, region: u16) -> AnnaClient {
        AnnaClient::new_in(&self.net, Arc::clone(&self.anna_directory), region)
    }

    /// The region a VM is deployed in: round-robin by id, like storage
    /// nodes, so compute capacity spreads evenly across the region set.
    fn vm_region(&self, vm: VmId) -> u16 {
        (vm % self.regions.max(1) as u64) as u16
    }

    fn spawn_vm(&self) -> VmId {
        let vm = self.next_vm.fetch_add(1, Ordering::Relaxed);
        let region = self.vm_region(vm);
        let mut kvs_addrs = Vec::with_capacity(self.executors_per_vm + 1);
        // The VM's cache reads/writes Anna through a region-tagged client,
        // so cache fills walk same-region storage replicas first.
        let cache_anna = self.anna_client_in(region);
        kvs_addrs.push(cache_anna.addr());
        let cache = VmCache::spawn(
            &self.runtime,
            vm,
            &self.net,
            cache_anna,
            Arc::clone(&self.topology),
            self.level,
            self.cache_config,
        );
        self.topology.add_cache(vm, cache.addr());
        let cache_inner = cache.inner();
        let mut executors = Vec::with_capacity(self.executors_per_vm);
        for _ in 0..self.executors_per_vm {
            let id = self.next_executor.fetch_add(1, Ordering::Relaxed);
            let endpoint = self.net.register_at(Site::region(region));
            let addr = endpoint.addr();
            let exec_anna = self.anna_client_in(region);
            kvs_addrs.push(exec_anna.addr());
            let handle = ExecutorHandle::spawn(
                &self.runtime,
                id,
                vm,
                endpoint,
                Arc::clone(&cache_inner),
                self.registry.clone(),
                Arc::clone(&self.topology),
                exec_anna,
                self.executor_config,
                self.trace.clone(),
            );
            self.topology.add_executor(id, addr, vm, region);
            executors.push(handle);
        }
        self.vms.lock().insert(
            vm,
            VmHandle {
                cache,
                executors,
                kvs_addrs,
            },
        );
        vm
    }

    fn retire_vm(&self, vm: VmId) -> bool {
        let Some(mut handle) = self.vms.lock().remove(&vm) else {
            return false;
        };
        for exec in &handle.executors {
            self.topology.remove_executor(exec.id);
            let _ = self
                .net
                .send(exec.addr, exec.addr, ExecutorRequest::Shutdown);
        }
        self.topology.remove_cache(vm);
        let cache_addr = handle.cache.addr();
        let _ = self.anna_client().unregister_cache(cache_addr);
        let exec_ids: Vec<u64> = handle.executors.iter().map(|e| e.id).collect();
        for exec in handle.executors.drain(..) {
            exec.join();
        }
        handle.cache.shutdown();
        // After the join: the threads can no longer re-publish behind the
        // prune's back.
        self.prune_executor_metrics(&exec_ids);
        true
    }

    /// Drop a removed executor's metric keys from the KVS so schedulers and
    /// the monitor cannot keep acting on a dead executor's last published
    /// load after a topology change. (Schedulers additionally prune their
    /// in-memory view against the topology every refresh tick, which covers
    /// any stale write that still lands after this.)
    fn prune_executor_metrics(&self, executors: &[u64]) {
        let client = self.anna_client();
        for &id in executors {
            for key in [
                mkeys::executor_metrics_key(id),
                mkeys::executor_functions_key(id),
                mkeys::executor_address_key(id),
            ] {
                let _ = client.delete(&key);
            }
        }
    }
}

impl ComputeScaler for ClusterInner {
    fn add_vm(&self) -> VmId {
        self.spawn_vm()
    }

    fn remove_vm(&self, vm: VmId) -> bool {
        self.retire_vm(vm)
    }

    fn vm_ids(&self) -> Vec<VmId> {
        let mut ids: Vec<VmId> = self.vms.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// A running Cloudburst deployment.
pub struct CloudburstCluster {
    net: Network,
    anna: Arc<AnnaCluster>,
    inner: Arc<ClusterInner>,
    schedulers: Vec<SchedulerHandle>,
    monitor: Option<MonitorHandle>,
    elastic: Option<ElasticHandle>,
    timeline: Arc<ScaleTimeline>,
    level: ConsistencyLevel,
}

impl CloudburstCluster {
    /// Launch a cluster.
    pub fn launch(config: CloudburstConfig) -> Self {
        let net = Network::new(config.net);
        // One pool for both tiers: storage nodes, executors, cache servers,
        // and schedulers all share these workers, so total thread count is
        // bounded by the pool size, not by actor count.
        let runtime = ActorRuntime::new(config.runtime);
        let anna = Arc::new(AnnaCluster::launch_on(&net, &runtime, config.anna));
        let topology = Arc::new(Topology::new());
        let registry = FunctionRegistry::new();
        let inner = Arc::new(ClusterInner {
            net: net.clone(),
            runtime: runtime.clone(),
            anna_directory: anna.directory(),
            topology: Arc::clone(&topology),
            registry: registry.clone(),
            level: config.level,
            cache_config: config.cache,
            executor_config: config.executor,
            trace: config.trace.clone(),
            vms: Mutex::ranked(10, "cb-vms", HashMap::new()),
            next_vm: AtomicU64::new(0),
            next_executor: AtomicU64::new(0),
            executors_per_vm: config.executors_per_vm.max(1),
            regions: config.anna.regions.max(1),
        });
        let mut schedulers = Vec::with_capacity(config.schedulers.max(1));
        for sid in 0..config.schedulers.max(1) as u64 {
            // Schedulers spread round-robin across the region set too, so
            // every region has a nearby entry point when there are enough.
            let endpoint = net.register_at(Site::region((sid % inner.regions as u64) as u16));
            schedulers.push(SchedulerHandle::spawn(
                &runtime,
                sid,
                endpoint,
                Arc::clone(&topology),
                inner.anna_client(),
                config.level,
                config.scheduler,
                config.trace.is_some(),
            ));
        }
        for _ in 0..config.vms.max(1) {
            inner.spawn_vm();
        }
        // Both tiers' scaling loops record into this one timeline, so the
        // compute and storage series interleave in causal order.
        let timeline = Arc::new(ScaleTimeline::new());
        let monitor = config.monitor.map(|mcfg| {
            MonitorHandle::spawn(
                net.clone(),
                inner.anna_client(),
                Arc::clone(&topology),
                Arc::clone(&inner) as Arc<dyn ComputeScaler>,
                Arc::clone(&timeline),
                mcfg,
            )
        });
        let elastic = config
            .elastic
            .map(|ecfg| anna.spawn_elastic(ecfg, Arc::clone(&timeline)));
        Self {
            net,
            anna,
            inner,
            schedulers,
            monitor,
            elastic,
            timeline,
            level: config.level,
        }
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The storage tier.
    pub fn anna(&self) -> &AnnaCluster {
        &self.anna
    }

    /// The compute-tier topology.
    pub fn topology(&self) -> Arc<Topology> {
        Arc::clone(&self.inner.topology)
    }

    /// The function registry (bodies live here; metadata in Anna).
    pub fn registry(&self) -> FunctionRegistry {
        self.inner.registry.clone()
    }

    /// The deployment consistency level.
    pub fn level(&self) -> ConsistencyLevel {
        self.level
    }

    /// Create a client handle (region 0).
    pub fn client(&self) -> CloudburstClient {
        self.client_in(0)
    }

    /// Create a client handle homed in `region`: its KVS reads walk local
    /// replicas first and its DAG calls prefer executors in that region.
    pub fn client_in(&self, region: u16) -> CloudburstClient {
        CloudburstClient::new(
            &self.net,
            self.inner.anna_client_in(region),
            self.inner.registry.clone(),
            Arc::clone(&self.inner.topology),
            self.level,
        )
    }

    /// The monitor handle (if autoscaling is enabled).
    pub fn monitor(&self) -> Option<&MonitorHandle> {
        self.monitor.as_ref()
    }

    /// The storage-tier elasticity engine (if enabled).
    pub fn elastic(&self) -> Option<&ElasticHandle> {
        self.elastic.as_ref()
    }

    /// The shared cross-tier autoscaling timeline.
    pub fn scale_timeline(&self) -> Arc<ScaleTimeline> {
        Arc::clone(&self.timeline)
    }

    /// The shared actor runtime both tiers run on.
    pub fn runtime(&self) -> &ActorRuntime {
        &self.inner.runtime
    }

    /// Snapshot of the shared runtime's scheduler statistics.
    pub fn runtime_stats(&self) -> RuntimeStats {
        self.inner.runtime.stats()
    }

    /// Current VM count.
    pub fn vm_count(&self) -> usize {
        self.inner.vms.lock().len()
    }

    /// Current executor-thread count.
    pub fn executor_count(&self) -> usize {
        self.inner.topology.executor_count()
    }

    /// Manually add a VM (the monitor does this automatically when enabled).
    pub fn add_vm(&self) -> VmId {
        self.inner.spawn_vm()
    }

    /// Manually remove a VM.
    pub fn remove_vm(&self, vm: VmId) -> bool {
        self.inner.retire_vm(vm)
    }

    /// Kill a VM abruptly (failure injection): executors and cache drop off
    /// the network without draining — DAGs running there must be re-executed
    /// by the scheduler timeout (§4.5).
    pub fn crash_vm(&self, vm: VmId) -> bool {
        let Some(handle) = self.inner.vms.lock().remove(&vm) else {
            return false;
        };
        for exec in &handle.executors {
            self.net.kill(exec.addr);
            self.inner.topology.remove_executor(exec.id);
        }
        self.net.kill(handle.cache.addr());
        for &kvs_addr in &handle.kvs_addrs {
            self.net.kill(kvs_addr);
        }
        self.inner.topology.remove_cache(vm);
        // The kill blocks the dead executors' sends, so their last published
        // load cannot resurface after this prune — without it, metric
        // consumers that miss a topology refresh could keep routing work at
        // executors that no longer exist.
        let exec_ids: Vec<u64> = handle.executors.iter().map(|e| e.id).collect();
        self.inner.prune_executor_metrics(&exec_ids);
        // Crash-stop the actors: their state is dropped without draining
        // mailboxes or flushing write-behind buffers (the seed leaked the
        // VM's threads until cluster shutdown instead — with a shared pool
        // the actors must be reaped, not abandoned).
        for exec in &handle.executors {
            exec.stop();
        }
        handle.cache.stop();
        true
    }

    /// IDs of the currently running VMs (chaos/failure injection picks its
    /// victims from this list).
    pub fn vm_ids(&self) -> Vec<VmId> {
        let mut ids: Vec<VmId> = self.inner.vms.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Shut everything down in dependency order.
    pub fn shutdown(&mut self) {
        if let Some(mut monitor) = self.monitor.take() {
            monitor.shutdown();
        }
        if let Some(mut elastic) = self.elastic.take() {
            elastic.shutdown();
        }
        for scheduler in self.schedulers.drain(..) {
            let _ = self
                .net
                .send(scheduler.addr, scheduler.addr, SchedulerRequest::Shutdown);
            scheduler.join();
        }
        let vm_ids: Vec<VmId> = self.inner.vms.lock().keys().copied().collect();
        for vm in vm_ids {
            self.inner.retire_vm(vm);
        }
        self.anna.shutdown();
        // Every actor is dead; stop the shared pool's workers last.
        self.inner.runtime.shutdown();
    }
}

impl Drop for CloudburstCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for CloudburstCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudburstCluster")
            .field("vms", &self.vm_count())
            .field("executors", &self.executor_count())
            .field("level", &self.level)
            .finish()
    }
}

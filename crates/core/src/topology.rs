//! [`Topology`]: the deterministic ID→address mapping of the compute tier.
//!
//! The paper's executors "use a deterministic mapping to convert from the
//! thread's unique ID to an IP-port pair" (§3) and advertise IDs through
//! well-known KVS keys. This shared view plays that role for executors,
//! caches, and schedulers; it is kept by the cluster manager and read by all
//! components (the authoritative copies also live in Anna under
//! `__sys/executor/*/addr` keys).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use cloudburst_net::Address;
use parking_lot::RwLock;

use crate::types::{ExecutorId, VmId};

/// Where one executor thread lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorInfo {
    /// The executor's message address.
    pub addr: Address,
    /// The VM hosting it (shared cache).
    pub vm: VmId,
    /// The region the hosting VM is deployed in (matches the network site
    /// its endpoints are registered at). Schedulers use this to keep DAG
    /// placement in the caller's region when data locality does not decide.
    pub region: u16,
}

#[derive(Debug, Default)]
struct Inner {
    executors: HashMap<ExecutorId, ExecutorInfo>,
    caches: HashMap<VmId, Address>,
    schedulers: Vec<Address>,
}

/// Shared compute-tier membership.
#[derive(Debug)]
pub struct Topology {
    // lock-rank: 20 cb-topology
    inner: RwLock<Inner>,
    /// Membership epoch, bumped on every add/remove. Cached scheduling
    /// decisions (the scheduler's plan cache) are validated against this so
    /// a crash or scale event immediately invalidates every plan that might
    /// reference a departed executor or cache.
    epoch: AtomicU64,
}

impl Default for Topology {
    fn default() -> Self {
        Self {
            inner: RwLock::ranked(20, "cb-topology", Inner::default()),
            epoch: AtomicU64::new(0),
        }
    }
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current membership epoch. Any executor/cache/scheduler change
    /// bumps it; equal epochs guarantee the member set is unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Register an executor thread.
    pub fn add_executor(&self, id: ExecutorId, addr: Address, vm: VmId, region: u16) {
        self.inner
            .write()
            .executors
            .insert(id, ExecutorInfo { addr, vm, region });
        self.bump_epoch();
    }

    /// Deregister an executor thread.
    pub fn remove_executor(&self, id: ExecutorId) {
        self.inner.write().executors.remove(&id);
        self.bump_epoch();
    }

    /// Resolve an executor's location.
    pub fn executor(&self, id: ExecutorId) -> Option<ExecutorInfo> {
        self.inner.read().executors.get(&id).copied()
    }

    /// All executors, sorted by ID.
    pub fn executors(&self) -> Vec<(ExecutorId, ExecutorInfo)> {
        let mut v: Vec<_> = self
            .inner
            .read()
            .executors
            .iter()
            .map(|(&id, &info)| (id, info))
            .collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }

    /// Number of registered executors.
    pub fn executor_count(&self) -> usize {
        self.inner.read().executors.len()
    }

    /// Register a VM's cache server.
    pub fn add_cache(&self, vm: VmId, addr: Address) {
        self.inner.write().caches.insert(vm, addr);
        self.bump_epoch();
    }

    /// Deregister a VM's cache server.
    pub fn remove_cache(&self, vm: VmId) {
        self.inner.write().caches.remove(&vm);
        self.bump_epoch();
    }

    /// The cache server address of a VM.
    pub fn cache_of(&self, vm: VmId) -> Option<Address> {
        self.inner.read().caches.get(&vm).copied()
    }

    /// All cache servers.
    pub fn caches(&self) -> Vec<(VmId, Address)> {
        let mut v: Vec<_> = self
            .inner
            .read()
            .caches
            .iter()
            .map(|(&vm, &a)| (vm, a))
            .collect();
        v.sort_unstable_by_key(|&(vm, _)| vm);
        v
    }

    /// Register a scheduler.
    pub fn add_scheduler(&self, addr: Address) {
        self.inner.write().schedulers.push(addr);
        self.bump_epoch();
    }

    /// All schedulers (requests are spread across them by the client, which
    /// stands in for the stateless cloud load balancer of §4).
    pub fn schedulers(&self) -> Vec<Address> {
        self.inner.read().schedulers.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_net::{Network, NetworkConfig};

    fn addr(net: &Network) -> Address {
        let ep = net.register();
        let a = ep.addr();
        std::mem::forget(ep);
        a
    }

    #[test]
    fn executor_lifecycle() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Topology::new();
        let a = addr(&net);
        topo.add_executor(5, a, 2, 1);
        assert_eq!(
            topo.executor(5),
            Some(ExecutorInfo {
                addr: a,
                vm: 2,
                region: 1
            })
        );
        assert_eq!(topo.executor_count(), 1);
        topo.remove_executor(5);
        assert!(topo.executor(5).is_none());
    }

    #[test]
    fn caches_and_schedulers() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Topology::new();
        let (c1, s1) = (addr(&net), addr(&net));
        topo.add_cache(1, c1);
        topo.add_scheduler(s1);
        assert_eq!(topo.cache_of(1), Some(c1));
        assert_eq!(topo.caches(), vec![(1, c1)]);
        assert_eq!(topo.schedulers(), vec![s1]);
        topo.remove_cache(1);
        assert!(topo.cache_of(1).is_none());
    }

    #[test]
    fn epoch_bumps_on_every_membership_change() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Topology::new();
        let e0 = topo.epoch();
        topo.add_executor(1, addr(&net), 0, 0);
        let e1 = topo.epoch();
        assert!(e1 > e0);
        topo.add_cache(0, addr(&net));
        let e2 = topo.epoch();
        assert!(e2 > e1);
        topo.remove_executor(1);
        let e3 = topo.epoch();
        assert!(e3 > e2);
        topo.remove_cache(0);
        assert!(topo.epoch() > e3);
    }

    #[test]
    fn executors_sorted() {
        let net = Network::new(NetworkConfig::instant());
        let topo = Topology::new();
        for id in [3u64, 1, 2] {
            topo.add_executor(id, addr(&net), 0, 0);
        }
        let ids: Vec<u64> = topo.executors().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}

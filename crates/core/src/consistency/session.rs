//! [`SessionMeta`]: the per-DAG-request consistency metadata shipped from
//! executor to executor.
//!
//! "When invoking a downstream function in the DAG, we propagate a list of
//! cache addresses and version timestamps for all snapshotted keys seen so
//! far" (Algorithm 1) and, in causal mode, "each executor ships the set of
//! causal dependencies (pairs of keys and their associated vector clocks) of
//! the read set to downstream executors" (Algorithm 2).

use std::collections::HashMap;

use cloudburst_lattice::{Key, Lattice, VectorClock};
use cloudburst_net::Address;

use crate::types::{ConsistencyLevel, RequestId, VersionId};

/// One entry of the session read set `R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRecord {
    /// The exact version observed (timestamp for LWW/RR; vector clock for
    /// causal modes).
    pub version: VersionId,
    /// The cache that snapshotted this version (queried by downstream caches
    /// that need the exact version).
    pub cache: Address,
}

/// One entry of the shipped causal dependency set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepRecord {
    /// Minimum admissible version of the dependency key.
    pub clock: VectorClock,
    /// The upstream cache storing a snapshot of this dependency.
    pub cache: Address,
}

/// The consistency metadata of one DAG execution (the "session", §5).
#[derive(Debug, Clone, Default)]
pub struct SessionMeta {
    /// The DAG request this session belongs to.
    pub request_id: RequestId,
    /// The deployment's consistency level.
    pub level: ConsistencyLevel,
    /// Keys read so far, with their observed versions (`R` in Algorithms
    /// 1 and 2).
    pub read_set: HashMap<Key, ReadRecord>,
    /// Causal dependencies of the read set (`dependencies` in Algorithm 2).
    pub dependencies: HashMap<Key, DepRecord>,
    /// When anomaly tracing is enabled (Table 2 experiments), every read is
    /// also logged here — even at levels that ship no protocol metadata — so
    /// the detector can reconstruct shadow causality.
    pub traced: bool,
    /// `(key, observed LWW timestamp)` log for tracing; shipped with the
    /// session only when `traced` is set.
    pub shadow_reads: Vec<(Key, cloudburst_lattice::Timestamp)>,
}

impl SessionMeta {
    /// A fresh session for one DAG request.
    pub fn new(request_id: RequestId, level: ConsistencyLevel) -> Self {
        Self {
            request_id,
            level,
            read_set: HashMap::new(),
            dependencies: HashMap::new(),
            traced: false,
            shadow_reads: Vec::new(),
        }
    }

    /// Record that this session observed `version` of `key` at `cache`,
    /// along with the version's own causal dependencies.
    pub fn record_read(
        &mut self,
        key: Key,
        version: VersionId,
        cache: Address,
        deps: impl IntoIterator<Item = (Key, VectorClock)>,
    ) {
        if !self.level.ships_session_metadata() {
            return;
        }
        if self.level == ConsistencyLevel::DistributedSessionCausal {
            for (dep_key, clock) in deps {
                merge_dep(&mut self.dependencies, dep_key, clock, cache);
            }
        }
        self.read_set.insert(key, ReadRecord { version, cache });
    }

    /// Record an in-DAG write: downstream readers must see (at least) this
    /// version, satisfying "it sees the most recent update to k within the
    /// DAG" (§5.1).
    pub fn record_write(&mut self, key: Key, version: VersionId, cache: Address) {
        if !self.level.ships_session_metadata() {
            return;
        }
        self.read_set.insert(key, ReadRecord { version, cache });
    }

    /// Merge the session metadata arriving along two in-edges of a DAG join
    /// node. Reads of the same key by parallel branches may legitimately
    /// diverge (§5.1 permits this); the join keeps the causally newest
    /// observation (or the later timestamp for LWW/RR).
    pub fn merge(&mut self, other: SessionMeta) {
        debug_assert_eq!(self.request_id, other.request_id);
        for (key, record) in other.read_set {
            match self.read_set.get_mut(&key) {
                None => {
                    self.read_set.insert(key, record);
                }
                Some(existing) => merge_read(existing, record),
            }
        }
        for (key, dep) in other.dependencies {
            merge_dep(&mut self.dependencies, key, dep.clock, dep.cache);
        }
        self.traced |= other.traced;
        for entry in other.shadow_reads {
            if !self.shadow_reads.contains(&entry) {
                self.shadow_reads.push(entry);
            }
        }
    }

    /// Approximate shipped-metadata size in bytes, for overhead reporting
    /// (§6.2.1).
    pub fn metadata_bytes(&self) -> usize {
        let reads: usize = self
            .read_set
            .iter()
            .map(|(k, r)| {
                k.as_str().len()
                    + 8
                    + match &r.version {
                        VersionId::Lww(_) => 16,
                        VersionId::Causal(vc) => vc.metadata_bytes(),
                    }
            })
            .sum();
        let deps: usize = self
            .dependencies
            .iter()
            .map(|(k, d)| k.as_str().len() + 8 + d.clock.metadata_bytes())
            .sum();
        reads + deps
    }
}

fn merge_read(existing: &mut ReadRecord, incoming: ReadRecord) {
    match (&mut existing.version, incoming.version) {
        (VersionId::Lww(a), VersionId::Lww(b)) if b > *a => {
            *existing = ReadRecord {
                version: VersionId::Lww(b),
                cache: incoming.cache,
            };
        }
        (VersionId::Causal(a), VersionId::Causal(b)) => {
            // Join: downstream must see a version at least as new as what
            // either branch saw.
            a.join_ref(&b);
            let _ = b;
        }
        // LWW with an older incoming version keeps the existing record;
        // mixed version kinds cannot occur within one deployment mode.
        _ => {}
    }
}

fn merge_dep(deps: &mut HashMap<Key, DepRecord>, key: Key, clock: VectorClock, cache: Address) {
    match deps.get_mut(&key) {
        None => {
            deps.insert(key, DepRecord { clock, cache });
        }
        Some(existing) => existing.clock.join_ref(&clock),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_lattice::Timestamp;
    use cloudburst_net::{Network, NetworkConfig};

    fn addr() -> Address {
        let net = Network::new(NetworkConfig::instant());
        let ep = net.register();
        let a = ep.addr();
        std::mem::forget(ep);
        std::mem::forget(net);
        a
    }

    fn vc(entries: &[(u64, u64)]) -> VectorClock {
        entries.iter().copied().collect()
    }

    #[test]
    fn lww_mode_ships_nothing() {
        let mut s = SessionMeta::new(1, ConsistencyLevel::Lww);
        s.record_read(
            Key::new("k"),
            VersionId::Lww(Timestamp::new(1, 1)),
            addr(),
            [],
        );
        assert!(s.read_set.is_empty());
        assert_eq!(s.metadata_bytes(), 0);
    }

    #[test]
    fn rr_records_reads_and_writes() {
        let mut s = SessionMeta::new(1, ConsistencyLevel::RepeatableRead);
        let a = addr();
        s.record_read(Key::new("k"), VersionId::Lww(Timestamp::new(1, 1)), a, []);
        assert_eq!(s.read_set.len(), 1);
        // In-DAG write supersedes the read version.
        s.record_write(Key::new("k"), VersionId::Lww(Timestamp::new(9, 1)), a);
        assert_eq!(
            s.read_set[&Key::new("k")].version,
            VersionId::Lww(Timestamp::new(9, 1))
        );
        // RR ships no dependency metadata.
        assert!(s.dependencies.is_empty());
    }

    #[test]
    fn dsc_collects_dependencies() {
        let mut s = SessionMeta::new(1, ConsistencyLevel::DistributedSessionCausal);
        let a = addr();
        s.record_read(
            Key::new("k"),
            VersionId::Causal(vc(&[(1, 1)])),
            a,
            [(Key::new("l"), vc(&[(2, 3)]))],
        );
        assert_eq!(s.read_set.len(), 1);
        assert_eq!(s.dependencies[&Key::new("l")].clock, vc(&[(2, 3)]));
        assert!(s.metadata_bytes() > 0);
    }

    #[test]
    fn merge_keeps_newest_lww_read() {
        let a = addr();
        let mut left = SessionMeta::new(1, ConsistencyLevel::RepeatableRead);
        left.record_read(Key::new("k"), VersionId::Lww(Timestamp::new(1, 1)), a, []);
        let mut right = SessionMeta::new(1, ConsistencyLevel::RepeatableRead);
        right.record_read(Key::new("k"), VersionId::Lww(Timestamp::new(5, 1)), a, []);
        left.merge(right);
        assert_eq!(
            left.read_set[&Key::new("k")].version,
            VersionId::Lww(Timestamp::new(5, 1))
        );
    }

    #[test]
    fn merge_joins_causal_clocks_and_deps() {
        let a = addr();
        let mut left = SessionMeta::new(1, ConsistencyLevel::DistributedSessionCausal);
        left.record_read(
            Key::new("k"),
            VersionId::Causal(vc(&[(1, 2)])),
            a,
            [(Key::new("d"), vc(&[(7, 1)]))],
        );
        let mut right = SessionMeta::new(1, ConsistencyLevel::DistributedSessionCausal);
        right.record_read(
            Key::new("k"),
            VersionId::Causal(vc(&[(2, 3)])),
            a,
            [(Key::new("d"), vc(&[(8, 4)]))],
        );
        left.merge(right);
        let VersionId::Causal(ref joined) = left.read_set[&Key::new("k")].version else {
            panic!("expected causal version");
        };
        assert_eq!(*joined, vc(&[(1, 2), (2, 3)]));
        assert_eq!(
            left.dependencies[&Key::new("d")].clock,
            vc(&[(7, 1), (8, 4)])
        );
    }

    #[test]
    fn merge_takes_disjoint_entries() {
        let a = addr();
        let mut left = SessionMeta::new(1, ConsistencyLevel::RepeatableRead);
        left.record_read(Key::new("x"), VersionId::Lww(Timestamp::new(1, 1)), a, []);
        let mut right = SessionMeta::new(1, ConsistencyLevel::RepeatableRead);
        right.record_read(Key::new("y"), VersionId::Lww(Timestamp::new(2, 1)), a, []);
        left.merge(right);
        assert_eq!(left.read_set.len(), 2);
    }
}

//! Anomaly detection for Table 2 (§6.2.2).
//!
//! The paper runs 4000 DAG executions in LWW mode and counts, *post hoc*, the
//! anomalies that each stronger consistency level would have prevented:
//! single-key causal (SK), multi-key causal (MK), distributed session causal
//! (DSC), and distributed session repeatable read (DSRR).
//!
//! We reproduce this with a trace: executors record every read and write
//! (with its session context) into a [`TraceSink`]; [`count_anomalies`]
//! replays the trace and classifies violations. Causality between versions
//! is derived from the session structure: a written version depends on every
//! key version its session read before the write — the same definition the
//! causal capsules use at runtime.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use cloudburst_lattice::{Key, Timestamp};
use parking_lot::Mutex;

use crate::types::{RequestId, VmId};

/// One traced storage access.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A read served to a function.
    Read {
        /// DAG request (session) ID.
        request: RequestId,
        /// Position of the function in the DAG's execution order.
        step: usize,
        /// The VM cache that served the read.
        cache: VmId,
        /// The key read.
        key: Key,
        /// The LWW timestamp of the version observed.
        version: Timestamp,
    },
    /// A write issued by a function.
    Write {
        /// DAG request (session) ID.
        request: RequestId,
        /// Position of the function in the DAG's execution order.
        step: usize,
        /// The VM cache that absorbed the write.
        cache: VmId,
        /// The key written.
        key: Key,
        /// The LWW timestamp assigned to the new version.
        version: Timestamp,
        /// Key versions the writing session had read before this write —
        /// the new version's causal dependency set.
        read_before: Vec<(Key, Timestamp)>,
    },
}

/// A shared, thread-safe trace collector (enabled only by the consistency
/// experiments; zero overhead when absent).
#[derive(Debug, Clone)]
pub struct TraceSink {
    // lock-rank: 52 cb-trace-events
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self {
            events: Arc::new(Mutex::ranked(52, "cb-trace-events", Vec::new())),
        }
    }
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// Drain all recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

/// Anomaly counts per consistency class. The causal classes are *specific*
/// counts; Table 2 presents them cumulatively (SK, SK+MK, SK+MK+DSC) because
/// the levels are increasingly strict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnomalyCounts {
    /// Reads that observed a version while a causally concurrent version of
    /// the same key existed (LWW silently dropped one of them).
    pub single_key: u64,
    /// Function invocations whose single-cache read set was not a causal
    /// cut.
    pub multi_key: u64,
    /// DAG requests whose cross-cache read set violated the causal-cut
    /// property (beyond single-invocation violations).
    pub distributed_causal: u64,
    /// DAG requests that read two different versions of the same key with no
    /// intervening in-DAG write.
    pub repeatable_read: u64,
}

impl AnomalyCounts {
    /// Cumulative causal columns as printed in Table 2: `(SK, MK, DSC)`.
    pub fn cumulative_causal(&self) -> (u64, u64, u64) {
        (
            self.single_key,
            self.single_key + self.multi_key,
            self.single_key + self.multi_key + self.distributed_causal,
        )
    }
}

/// Classify the anomalies in a trace. See module docs for definitions.
pub fn count_anomalies(events: &[TraceEvent]) -> AnomalyCounts {
    let deps = collect_version_deps(events);
    let order = same_key_order(&deps);
    let versions_by_key = versions_by_key(&deps, events);

    let mut counts = AnomalyCounts::default();
    count_single_key(events, &order, &versions_by_key, &mut counts);
    count_causal_cut_violations(events, &deps, &mut counts);
    count_repeatable_read(events, &mut counts);
    counts
}

type VersionDeps = HashMap<(Key, Timestamp), Vec<(Key, Timestamp)>>;

/// Dependency set of each written version.
fn collect_version_deps(events: &[TraceEvent]) -> VersionDeps {
    let mut deps: VersionDeps = HashMap::new();
    for e in events {
        if let TraceEvent::Write {
            key,
            version,
            read_before,
            ..
        } = e
        {
            deps.entry((key.clone(), *version))
                .or_default()
                .extend(read_before.iter().cloned());
        }
    }
    deps
}

/// All versions seen per key (written or read, so pre-loaded versions count).
fn versions_by_key(deps: &VersionDeps, events: &[TraceEvent]) -> HashMap<Key, Vec<Timestamp>> {
    let mut versions: HashMap<Key, HashSet<Timestamp>> = HashMap::new();
    for (key, ts) in deps.keys() {
        versions.entry(key.clone()).or_default().insert(*ts);
    }
    for e in events {
        if let TraceEvent::Read { key, version, .. } = e {
            versions.entry(key.clone()).or_default().insert(*version);
        }
    }
    versions
        .into_iter()
        .map(|(k, set)| {
            let mut v: Vec<Timestamp> = set.into_iter().collect();
            v.sort_unstable();
            (k, v)
        })
        .collect()
}

/// The happens-before order between versions *of the same key*, from direct
/// dependency edges closed transitively along same-key chains. (Cross-key
/// chains that induce same-key order are rare in these workloads and their
/// omission only makes the detector conservative.)
fn same_key_order(deps: &VersionDeps) -> HashMap<Key, HashSet<(Timestamp, Timestamp)>> {
    // order[k] contains (a, b) iff version a happens-before version b.
    let mut order: HashMap<Key, HashSet<(Timestamp, Timestamp)>> = HashMap::new();
    for ((key, ts), dep_list) in deps {
        for (dep_key, dep_ts) in dep_list {
            if dep_key == key && dep_ts != ts {
                order.entry(key.clone()).or_default().insert((*dep_ts, *ts));
            }
        }
    }
    // Transitive closure per key (version counts per key are small).
    for pairs in order.values_mut() {
        loop {
            let mut added = Vec::new();
            for &(a, b) in pairs.iter() {
                for &(c, d) in pairs.iter() {
                    if b == c && a != d && !pairs.contains(&(a, d)) {
                        added.push((a, d));
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            pairs.extend(added);
        }
    }
    order
}

fn concurrent(
    order: &HashMap<Key, HashSet<(Timestamp, Timestamp)>>,
    key: &Key,
    a: Timestamp,
    b: Timestamp,
) -> bool {
    if a == b {
        return false;
    }
    match order.get(key) {
        None => true,
        Some(pairs) => !pairs.contains(&(a, b)) && !pairs.contains(&(b, a)),
    }
}

fn count_single_key(
    events: &[TraceEvent],
    order: &HashMap<Key, HashSet<(Timestamp, Timestamp)>>,
    versions: &HashMap<Key, Vec<Timestamp>>,
    counts: &mut AnomalyCounts,
) {
    for e in events {
        if let TraceEvent::Read { key, version, .. } = e {
            let Some(all) = versions.get(key) else {
                continue;
            };
            // A concurrent sibling existed → SK causality would have
            // preserved both; LWW dropped one.
            if all
                .iter()
                .any(|&other| other != *version && concurrent(order, key, other, *version))
            {
                counts.single_key += 1;
            }
        }
    }
}

/// MK: per-invocation causal-cut check. DSC: per-request cross-invocation
/// check (counted only when not already flagged within one invocation).
fn count_causal_cut_violations(
    events: &[TraceEvent],
    deps: &VersionDeps,
    counts: &mut AnomalyCounts,
) {
    // (request, step) → reads; request → reads.
    let mut by_invocation: HashMap<(RequestId, usize), Vec<(&Key, Timestamp)>> = HashMap::new();
    let mut by_request: HashMap<RequestId, Vec<(&Key, Timestamp)>> = HashMap::new();
    for e in events {
        if let TraceEvent::Read {
            request,
            step,
            key,
            version,
            ..
        } = e
        {
            by_invocation
                .entry((*request, *step))
                .or_default()
                .push((key, *version));
            by_request
                .entry(*request)
                .or_default()
                .push((key, *version));
        }
    }

    let violates = |reads: &[(&Key, Timestamp)]| -> bool {
        for (k, ts) in reads {
            let Some(dep_list) = deps.get(&((*k).clone(), *ts)) else {
                continue;
            };
            for (dep_key, required) in dep_list {
                // The read set observed a version of dep_key older than the
                // version (k, ts) depends on → not a causal cut.
                if reads
                    .iter()
                    .any(|(l, seen)| *l == dep_key && seen < required)
                {
                    return true;
                }
            }
        }
        false
    };

    let mut mk_requests: HashSet<RequestId> = HashSet::new();
    for ((request, _), reads) in &by_invocation {
        if violates(reads) {
            counts.multi_key += 1;
            mk_requests.insert(*request);
        }
    }
    for (request, reads) in &by_request {
        if !mk_requests.contains(request) && violates(reads) {
            counts.distributed_causal += 1;
        }
    }
}

fn count_repeatable_read(events: &[TraceEvent], counts: &mut AnomalyCounts) {
    // Group events per request in step order, then scan each key's
    // read/write sequence.
    let mut per_request: HashMap<RequestId, Vec<&TraceEvent>> = HashMap::new();
    for e in events {
        let request = match e {
            TraceEvent::Read { request, .. } | TraceEvent::Write { request, .. } => *request,
        };
        per_request.entry(request).or_default().push(e);
    }
    for (_, mut evs) in per_request {
        evs.sort_by_key(|e| match e {
            TraceEvent::Read { step, .. } | TraceEvent::Write { step, .. } => *step,
        });
        let mut last_seen: HashMap<&Key, Timestamp> = HashMap::new();
        let mut flagged: HashSet<&Key> = HashSet::new();
        for e in &evs {
            match e {
                TraceEvent::Read { key, version, .. } => {
                    if let Some(&prev) = last_seen.get(key) {
                        if prev != *version && !flagged.contains(key) {
                            counts.repeatable_read += 1;
                            flagged.insert(key);
                        }
                    }
                    last_seen.entry(key).or_insert(*version);
                }
                TraceEvent::Write { key, version, .. } => {
                    // An in-DAG write legitimately changes the version
                    // downstream readers must see.
                    last_seen.insert(key, *version);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64, node: u64) -> Timestamp {
        Timestamp::new(t, node)
    }

    fn read(request: RequestId, step: usize, key: &str, version: Timestamp) -> TraceEvent {
        TraceEvent::Read {
            request,
            step,
            cache: 0,
            key: Key::new(key),
            version,
        }
    }

    fn write(
        request: RequestId,
        step: usize,
        key: &str,
        version: Timestamp,
        read_before: &[(&str, Timestamp)],
    ) -> TraceEvent {
        TraceEvent::Write {
            request,
            step,
            cache: 0,
            key: Key::new(key),
            version,
            read_before: read_before
                .iter()
                .map(|(k, t)| (Key::new(*k), *t))
                .collect(),
        }
    }

    #[test]
    fn clean_trace_has_no_anomalies() {
        // One session reads k then writes k (ordered versions).
        let events = vec![
            read(1, 0, "k", ts(1, 1)),
            write(1, 1, "k", ts(2, 1), &[("k", ts(1, 1))]),
            read(2, 0, "k", ts(2, 1)),
        ];
        assert_eq!(count_anomalies(&events), AnomalyCounts::default());
    }

    #[test]
    fn concurrent_writes_flag_single_key() {
        // Two sessions write k without having read each other's version →
        // concurrent; a later read observes one of them.
        let events = vec![
            write(1, 0, "k", ts(5, 1), &[]),
            write(2, 0, "k", ts(5, 2), &[]),
            read(3, 0, "k", ts(5, 2)),
        ];
        let counts = count_anomalies(&events);
        assert_eq!(counts.single_key, 1);
        assert_eq!(counts.multi_key, 0);
        assert_eq!(counts.repeatable_read, 0);
    }

    #[test]
    fn ordered_writes_do_not_flag_single_key() {
        // Session 2 read session 1's version before writing → ordered.
        let events = vec![
            write(1, 0, "k", ts(1, 1), &[]),
            read(2, 0, "k", ts(1, 1)),
            write(2, 1, "k", ts(2, 2), &[("k", ts(1, 1))]),
            read(3, 0, "k", ts(2, 2)),
        ];
        let counts = count_anomalies(&events);
        assert_eq!(counts.single_key, 0);
    }

    #[test]
    fn causal_cut_violation_within_invocation_is_mk() {
        // Session 1: reads l@1, writes k@2 (so k@2 depends on l@1).
        // But l@1 itself was written depending on... we need: invocation
        // reads k@2 and an *older* l than k@2's dependency.
        let events = vec![
            write(1, 0, "l", ts(1, 1), &[]),
            write(1, 1, "l", ts(9, 1), &[("l", ts(1, 1))]),
            read(2, 0, "l", ts(9, 1)),
            write(2, 1, "k", ts(3, 2), &[("l", ts(9, 1))]),
            // Invocation reads k@3 (dep: l ≥ 9) and stale l@1 together.
            read(3, 0, "k", ts(3, 2)),
            read(3, 0, "l", ts(1, 1)),
        ];
        let counts = count_anomalies(&events);
        assert_eq!(counts.multi_key, 1);
        assert_eq!(counts.distributed_causal, 0, "already flagged at MK level");
    }

    #[test]
    fn causal_cut_violation_across_invocations_is_dsc() {
        let events = vec![
            write(1, 0, "l", ts(1, 1), &[]),
            write(1, 1, "l", ts(9, 1), &[("l", ts(1, 1))]),
            read(2, 0, "l", ts(9, 1)),
            write(2, 1, "k", ts(3, 2), &[("l", ts(9, 1))]),
            // Different steps (→ different caches) of request 3.
            read(3, 0, "k", ts(3, 2)),
            read(3, 1, "l", ts(1, 1)),
        ];
        let counts = count_anomalies(&events);
        assert_eq!(counts.multi_key, 0);
        assert_eq!(counts.distributed_causal, 1);
    }

    #[test]
    fn repeatable_read_violation_detected() {
        let events = vec![
            read(1, 0, "k", ts(1, 1)),
            read(1, 1, "k", ts(2, 2)), // different version, no in-DAG write
        ];
        let counts = count_anomalies(&events);
        assert_eq!(counts.repeatable_read, 1);
    }

    #[test]
    fn in_dag_write_makes_new_version_legitimate() {
        let events = vec![
            read(1, 0, "k", ts(1, 1)),
            write(1, 1, "k", ts(2, 1), &[("k", ts(1, 1))]),
            read(1, 2, "k", ts(2, 1)),
        ];
        let counts = count_anomalies(&events);
        assert_eq!(counts.repeatable_read, 0);
    }

    #[test]
    fn rr_flags_once_per_key_per_request() {
        let events = vec![
            read(1, 0, "k", ts(1, 1)),
            read(1, 1, "k", ts(2, 2)),
            read(1, 2, "k", ts(3, 3)),
        ];
        assert_eq!(count_anomalies(&events).repeatable_read, 1);
    }

    #[test]
    fn cumulative_presentation_accrues() {
        let counts = AnomalyCounts {
            single_key: 900,
            multi_key: 35,
            distributed_causal: 104,
            repeatable_read: 46,
        };
        assert_eq!(counts.cumulative_causal(), (900, 935, 1039));
    }

    #[test]
    fn trace_sink_collects_and_drains() {
        let sink = TraceSink::new();
        assert!(sink.is_empty());
        sink.record(read(1, 0, "k", ts(1, 1)));
        sink.record(write(1, 1, "k", ts(2, 1), &[]));
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert!(sink.is_empty());
    }
}

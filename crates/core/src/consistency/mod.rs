//! Distributed session consistency: the metadata shipped along DAG edges and
//! the anomaly detectors used to validate the guarantees (paper §5, §6.2).

pub mod anomaly;
pub mod session;

pub use anomaly::{count_anomalies, AnomalyCounts, TraceEvent, TraceSink};
pub use session::{DepRecord, ReadRecord, SessionMeta};

//! Function registration and the runtime interface functions program
//! against.
//!
//! The paper's functions are vanilla Python, serialized with cloudpickle and
//! stored in Anna. Rust cannot serialize closures, so function *bodies* live
//! in a process-wide [`FunctionRegistry`] while function *metadata* is stored
//! in Anna exactly as in the paper; executors still perform the
//! fetch/deserialize/cache dance against Anna before first use (DESIGN.md §2
//! documents this substitution).

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use cloudburst_lattice::Key;
use parking_lot::RwLock;

use crate::types::ExecutorId;

/// The system interface exposed to user functions — the Cloudburst object
/// API of Table 1 (`get`, `put`, `delete`, `send`, `recv`, `get_id`) plus a
/// compute-cost hook that stands in for real Python computation.
pub trait Runtime {
    /// Retrieve a key from the KVS (served by the co-located cache, under
    /// the session's consistency level).
    fn get(&mut self, key: &Key) -> Option<Bytes>;

    /// Insert or update a key in the KVS (written to the local cache,
    /// asynchronously merged into Anna).
    fn put(&mut self, key: &Key, value: Bytes);

    /// Delete a key from the KVS.
    fn delete(&mut self, key: &Key);

    /// Send a message directly to another executor thread; falls back to the
    /// target's Anna inbox if no direct connection can be established (§3).
    fn send(&mut self, to: ExecutorId, message: Bytes);

    /// Receive outstanding messages for this function (non-blocking; checks
    /// the local port first, then the KVS inbox).
    fn recv(&mut self) -> Vec<Bytes>;

    /// Blocking receive: wait up to `paper_ms` for at least one message.
    fn recv_timeout(&mut self, paper_ms: f64) -> Vec<Bytes>;

    /// This function invocation's unique executor-thread ID.
    fn executor_id(&self) -> ExecutorId;

    /// Model `paper_ms` of pure computation (scaled; stands in for the
    /// Python work the paper's functions perform).
    fn compute(&mut self, paper_ms: f64);
}

/// A registered function body.
pub type FunctionBody =
    Arc<dyn Fn(&mut dyn Runtime, &[Bytes]) -> Result<Bytes, String> + Send + Sync>;

/// The process-wide function code store (stands in for cloudpickle blobs in
/// Anna; see module docs).
#[derive(Clone)]
pub struct FunctionRegistry {
    // lock-rank: 22 cb-functions
    inner: Arc<RwLock<HashMap<String, FunctionBody>>>,
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self {
            inner: Arc::new(RwLock::ranked(22, "cb-functions", HashMap::new())),
        }
    }
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a function body under `name`.
    pub fn register(
        &self,
        name: impl Into<String>,
        body: impl Fn(&mut dyn Runtime, &[Bytes]) -> Result<Bytes, String> + Send + Sync + 'static,
    ) {
        self.inner.write().insert(name.into(), Arc::new(body));
    }

    /// Look up a function body.
    pub fn get(&self, name: &str) -> Option<FunctionBody> {
        self.inner.read().get(name).cloned()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("functions", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;

    struct NopRuntime;
    impl Runtime for NopRuntime {
        fn get(&mut self, _: &Key) -> Option<Bytes> {
            None
        }
        fn put(&mut self, _: &Key, _: Bytes) {}
        fn delete(&mut self, _: &Key) {}
        fn send(&mut self, _: ExecutorId, _: Bytes) {}
        fn recv(&mut self) -> Vec<Bytes> {
            Vec::new()
        }
        fn recv_timeout(&mut self, _: f64) -> Vec<Bytes> {
            Vec::new()
        }
        fn executor_id(&self) -> ExecutorId {
            7
        }
        fn compute(&mut self, _: f64) {}
    }

    #[test]
    fn register_and_invoke() {
        let reg = FunctionRegistry::new();
        reg.register("square", |_rt, args| {
            let x = codec::decode_i64(&args[0]).ok_or("bad arg")?;
            Ok(codec::encode_i64(x * x))
        });
        assert!(reg.contains("square"));
        assert_eq!(reg.len(), 1);
        let body = reg.get("square").unwrap();
        let out = body(&mut NopRuntime, &[codec::encode_i64(5)]).unwrap();
        assert_eq!(codec::decode_i64(&out), Some(25));
    }

    #[test]
    fn missing_function_is_none() {
        let reg = FunctionRegistry::new();
        assert!(reg.get("nope").is_none());
        assert!(!reg.contains("nope"));
        assert!(reg.is_empty());
    }

    #[test]
    fn re_registration_replaces() {
        let reg = FunctionRegistry::new();
        reg.register("f", |_, _| Ok(Bytes::from_static(b"v1")));
        reg.register("f", |_, _| Ok(Bytes::from_static(b"v2")));
        assert_eq!(reg.len(), 1);
        let out = reg.get("f").unwrap()(&mut NopRuntime, &[]).unwrap();
        assert_eq!(out.as_ref(), b"v2");
    }

    #[test]
    fn function_errors_propagate() {
        let reg = FunctionRegistry::new();
        reg.register("fail", |_, _| Err("explicit program error".into()));
        let err = reg.get("fail").unwrap()(&mut NopRuntime, &[]).unwrap_err();
        assert!(err.contains("explicit"));
    }

    #[test]
    fn names_are_sorted() {
        let reg = FunctionRegistry::new();
        for n in ["zeta", "alpha", "mid"] {
            reg.register(n, |_, _| Ok(Bytes::new()));
        }
        assert_eq!(reg.names(), vec!["alpha", "mid", "zeta"]);
    }
}

//! A minimal hand-rolled Rust lexer.
//!
//! cb-lint works at the *token* level, not the syntax-tree level: every rule
//! is a pattern over a flat token stream. That keeps the linter dependency-
//! free (no `syn`, no registry access) and keeps each rule small enough to
//! audit by eye. The lexer therefore only has to get the things right that
//! change token boundaries:
//!
//! - line (`//`) and nested block (`/* /* */ */`) comments — **kept** in the
//!   stream, because two rules read annotations out of comments
//!   (`// lock-rank: …` for L002, `// lint: allow(…): …` escapes);
//! - string/char literals, including raw strings (`r#"…"#` with any number
//!   of hashes) and byte variants — collapsed to opaque `Literal` tokens so
//!   rule patterns can never fire inside quoted text (this is also what lets
//!   the linter lint its own fixture strings without tripping on them);
//! - lifetimes vs. char literals (`'a` vs `'a'`);
//! - identifiers (including `r#raw` idents) and one-char punctuation.
//!
//! Everything else — numbers, multi-char operators — is deliberately sloppy:
//! `::` is two `:` tokens, `->` is `-` `>`. Rules match the split form.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`struct`, `Mutex`, `r#raw` → `raw`).
    Ident,
    /// A single punctuation character (`:`, `<`, `{`, `#`, …).
    Punct,
    /// Any literal: string, raw string, byte string, char, number.
    Literal,
    /// A lifetime (`'a`, `'static`). Distinguished from char literals.
    Lifetime,
    /// `// …` comment (text excludes the `//`).
    LineComment,
    /// `/* … */` comment (text excludes the delimiters, nesting preserved).
    BlockComment,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lex `src` into a token stream. Never fails: unrecognized bytes become
/// punctuation, an unterminated literal swallows the rest of the file —
/// good enough for a linter that only runs on code rustc already accepts.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: Kind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c == '_' || c.is_alphanumeric() => self.ident(line),
                _ => {
                    self.bump();
                    self.push(Kind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // //
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Kind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // /*
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(Kind::BlockComment, text, line);
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(Kind::Literal, String::new(), line);
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns false if
    /// the `r`/`b` at the cursor starts a plain identifier instead (the
    /// caller then falls through to `ident`). Raw idents `r#foo` also land
    /// here and are forwarded to `ident` handling.
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        // Work out the shape without consuming.
        let c0 = self.peek(0).unwrap();
        let mut i = 1;
        if c0 == 'b' && self.peek(1) == Some('r') {
            i = 2;
        }
        // Count hashes.
        let mut hashes = 0;
        while self.peek(i + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(i + hashes) {
            Some('"') => {}
            Some('\'') if c0 == 'b' && i == 1 && hashes == 0 => {
                // b'x' byte char
                self.bump();
                self.bump(); // b'
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(Kind::Literal, String::new(), line);
                return true;
            }
            _ if c0 == 'r' && hashes >= 1 && i == 1 => {
                // r#ident raw identifier: lex as ident, strip the r#.
                if self
                    .peek(i + 1)
                    .is_some_and(|c| c == '_' || c.is_alphanumeric())
                {
                    self.bump();
                    self.bump(); // r#
                    self.ident(line);
                    return true;
                }
                return false;
            }
            _ => return false, // plain identifier starting with r/b
        }
        if hashes == 0 && i == 1 && c0 == 'b' {
            // b"…" — plain byte string with escapes.
            self.bump();
            self.bump(); // b"
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '"' => break,
                    _ => {}
                }
            }
            self.push(Kind::Literal, String::new(), line);
            return true;
        }
        if hashes == 0 && c0 == 'r' && i == 1 {
            // r"…" — raw, no escapes, ends at first quote.
            self.bump();
            self.bump(); // r"
            while let Some(c) = self.bump() {
                if c == '"' {
                    break;
                }
            }
            self.push(Kind::Literal, String::new(), line);
            return true;
        }
        // r#…#"…"#…# with `hashes` hashes (possibly after br).
        for _ in 0..i + hashes + 1 {
            self.bump(); // prefix, hashes, opening quote
        }
        loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
        self.push(Kind::Literal, String::new(), line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // 'a' is a char, 'a is a lifetime. A lifetime is ' followed by an
        // ident NOT followed by a closing quote.
        let is_lifetime = match (self.peek(1), self.peek(2)) {
            (Some(c1), Some('\'')) if c1 != '\\' => false, // 'x'
            (Some(c1), _) if c1 == '_' || c1.is_alphabetic() => {
                // Scan the ident; lifetime iff no closing quote right after.
                let mut j = 2;
                while self
                    .peek(j)
                    .is_some_and(|c| c == '_' || c.is_alphanumeric())
                {
                    j += 1;
                }
                self.peek(j) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(Kind::Lifetime, text, line);
        } else {
            self.bump(); // '
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(Kind::Literal, String::new(), line);
        }
    }

    fn number(&mut self, line: u32) {
        // Numbers can't start idents in Rust, so consume digits, letters,
        // underscores, and `.` followed by a digit (float). Good enough.
        while let Some(c) = self.peek(0) {
            let in_number = c == '_'
                || c.is_alphanumeric()
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !in_number {
                break;
            }
            self.bump();
        }
        self.push(Kind::Literal, String::new(), line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Kind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("std::sync::Mutex<T>");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["std", "sync", "Mutex", "T"]);
    }

    #[test]
    fn comments_are_kept_with_text() {
        let toks = lex("x // lock-rank: 5 foo\n/* block */ y");
        assert!(toks
            .iter()
            .any(|t| t.kind == Kind::LineComment && t.text.contains("lock-rank: 5 foo")));
        assert!(toks
            .iter()
            .any(|t| t.kind == Kind::BlockComment && t.text.contains("block")));
    }

    #[test]
    fn nested_block_comment() {
        let toks = lex("/* a /* b */ c */ after");
        assert_eq!(toks.len(), 2);
        assert!(toks[0].text.contains("a /* b */ c"));
        assert!(toks[1].is_ident("after"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "std::sync::Mutex"; x"#);
        assert!(!toks.iter().any(|t| t.is_ident("Mutex")));
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"let s = r#"contains "quotes" and Mutex"#; done"###);
        assert!(!toks.iter().any(|t| t.is_ident("Mutex")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex(r##"let a = b"bytes"; let b2 = br#"raw Mutex"#; done"##);
        assert!(!toks.iter().any(|t| t.is_ident("Mutex")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = lex(r"fn f<'a>(x: &'a str) { let c = 'x'; let n = '\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            2,
            "two 'a lifetimes"
        );
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == Kind::Literal && t.line == 1)
                .count(),
            2,
            "two char literals"
        );
    }

    #[test]
    fn raw_ident() {
        let toks = lex("let r#struct = 1;");
        assert!(toks.iter().any(|t| t.is_ident("struct")));
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn idents_starting_with_r_and_b_are_not_strings() {
        let toks = lex("ready break_even rbx b r");
        let idents: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, ["ready", "break_even", "rbx", "b", "r"]);
    }
}

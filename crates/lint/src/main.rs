//! cb-lint: the workspace concurrency linter.
//!
//! Run as `cargo run -p lint` (or `scripts/lint.sh`). Scans every `.rs`
//! file in the product tree — `crates/` and the root `src/` — and enforces
//! the six rules documented in [`rules`]. `vendor/` and `target/` are
//! never scanned: the vendored stand-ins are third-party API surface, and
//! the sanitizer inside `vendor/parking_lot` legitimately uses `std::sync`
//! primitives to avoid recursing into itself.
//!
//! Exit status: 0 when clean, 1 when any violation is found, 2 on I/O or
//! usage errors. Output is one line per violation:
//!
//! ```text
//! L003 crates/anna/src/elastic.rs:181: `Instant::now` is ambient nondeterminism; …
//! ```
//!
//! The dynamic half of the same contract — the `CB_SANITIZE=1` lock-order
//! sanitizer — lives in `vendor/parking_lot`; the `// lock-rank:`
//! annotations this linter demands (L002) are the declared hierarchy that
//! sanitizer checks at runtime.

mod lexer;
mod rules;

use rules::{ConfigField, FileCtx, Violation};
use std::path::{Path, PathBuf};

fn main() {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cb-lint: {e}");
            std::process::exit(2);
        }
    };
    match run(&root) {
        Ok(0) => std::process::exit(0),
        Ok(_) => std::process::exit(1),
        Err(e) => {
            eprintln!("cb-lint: {e}");
            std::process::exit(2);
        }
    }
}

/// Explicit root argument, else two levels up from this crate's manifest.
fn workspace_root() -> Result<PathBuf, String> {
    if let Some(arg) = std::env::args().nth(1) {
        let p = PathBuf::from(&arg);
        if !p.is_dir() {
            return Err(format!("not a directory: {arg}"));
        }
        return Ok(p);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .ok_or_else(|| "cannot locate workspace root".into())
}

fn run(root: &Path) -> Result<usize, String> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    collect_rs_files(&root.join("src"), &mut files);
    files.sort();

    let arch = std::fs::read_to_string(root.join("ARCHITECTURE.md"))
        .map_err(|e| format!("read ARCHITECTURE.md: {e}"))?;
    let knob_index = knob_index_section(&arch);

    let mut all: Vec<(String, Violation)> = Vec::new();
    let mut config_fields: Vec<(String, ConfigField)> = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            std::fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let ctx = FileCtx::new(&rel, &src);
        for v in ctx
            .escape_violations()
            .into_iter()
            .chain(ctx.l001_std_locks())
            .chain(ctx.l002_lock_rank())
            .chain(ctx.l003_nondeterminism())
            .chain(ctx.l005_channel_unwraps())
            .chain(ctx.l006_thread_spawns())
        {
            all.push((rel.clone(), v));
        }
        for f in ctx.l004_config_fields() {
            config_fields.push((rel.clone(), f));
        }
    }

    // L004: every pub Config field must appear, backticked, in the
    // per-knob index section of ARCHITECTURE.md.
    for (rel, f) in &config_fields {
        let struct_listed = knob_index.contains(&format!("`{}`", f.strukt));
        let field_listed = knob_index.contains(&format!("`{}`", f.field));
        if !struct_listed {
            all.push((
                rel.clone(),
                Violation {
                    line: f.line,
                    rule: "L004",
                    msg: format!(
                        "`{}` is not documented in ARCHITECTURE.md's per-knob index",
                        f.strukt
                    ),
                },
            ));
        } else if !field_listed {
            all.push((
                rel.clone(),
                Violation {
                    line: f.line,
                    rule: "L004",
                    msg: format!(
                        "knob `{}.{}` is missing from ARCHITECTURE.md's per-knob index",
                        f.strukt, f.field
                    ),
                },
            ));
        }
    }
    // …and the reverse: a `### `Name`` heading in the index that names a
    // struct no longer in the tree is documentation rot.
    let known: std::collections::BTreeSet<&str> = config_fields
        .iter()
        .map(|(_, f)| f.strukt.as_str())
        .collect();
    for heading in knob_index_struct_headings(&knob_index) {
        if heading.ends_with("Config") && !known.contains(heading.as_str()) {
            all.push((
                "ARCHITECTURE.md".into(),
                Violation {
                    line: 0,
                    rule: "L004",
                    msg: format!(
                        "per-knob index documents `{heading}` but no such pub Config struct exists"
                    ),
                },
            ));
        }
    }

    all.sort_by(|a, b| (&a.0, a.1.line, a.1.rule).cmp(&(&b.0, b.1.line, b.1.rule)));
    all.dedup();
    for (rel, v) in &all {
        println!("{} {}:{}: {}", v.rule, rel, v.line, v.msg);
    }
    println!(
        "cb-lint: {} files, {} config knobs checked, {} violation(s)",
        files.len(),
        config_fields.len(),
        all.len()
    );
    Ok(all.len())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The `## Per-knob index` section, up to the next `## ` heading.
fn knob_index_section(arch: &str) -> String {
    let mut out = String::new();
    let mut inside = false;
    for line in arch.lines() {
        if let Some(h) = line.strip_prefix("## ") {
            inside = h.to_lowercase().contains("per-knob index");
            continue;
        }
        if inside {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Struct names from `### `Name` — …` headings inside the knob index.
fn knob_index_struct_headings(section: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in section.lines() {
        let Some(rest) = line.strip_prefix("### `") else {
            continue;
        };
        if let Some(end) = rest.find('`') {
            out.push(rest[..end].to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARCH_FIXTURE: &str = "\
# ARCHITECTURE

## Something else

`decoy` text.

## Per-knob index

### `FooConfig` — `crates/foo/src/lib.rs`

| knob | default | effect |
|---|---|---|
| `alpha` | 1 | does alpha |

### `GoneConfig` — `crates/gone/src/lib.rs`

| `old_knob` | — | … |

## After

`not_a_knob`
";

    #[test]
    fn knob_section_is_bounded_by_h2_headings() {
        let s = knob_index_section(ARCH_FIXTURE);
        assert!(s.contains("`alpha`"));
        assert!(!s.contains("`decoy`"));
        assert!(!s.contains("`not_a_knob`"));
    }

    #[test]
    fn struct_headings_are_extracted() {
        let s = knob_index_section(ARCH_FIXTURE);
        assert_eq!(knob_index_struct_headings(&s), ["FooConfig", "GoneConfig"]);
    }
}

//! The six cb-lint rules, as patterns over the [`crate::lexer`] stream.
//!
//! | rule | meaning |
//! |------|---------|
//! | L001 | no `std::sync::Mutex`/`RwLock` in product crates — use the vendored `parking_lot`, which carries the lock-rank sanitizer |
//! | L002 | every long-lived `Mutex`/`RwLock` field declares `// lock-rank: <N> <name>` (the sanitizer's hierarchy contract) |
//! | L003 | no wall-clock / entropy calls (`Instant::now`, `SystemTime::now`, `thread_rng`, …) outside tests and the bench harness |
//! | L004 | every `pub` field of every `pub struct *Config` appears in ARCHITECTURE.md's per-knob index |
//! | L005 | no `.unwrap()`/`.expect(…)` on channel/lock results in non-test code |
//! | L006 | no `thread::spawn`/`thread::Builder` outside `crates/runtime` and `crates/net` — actors run on the shared work-stealing pool |
//!
//! ## Escapes
//!
//! A violation is suppressed by an inline comment on the same line or the
//! line(s) immediately above the offending code:
//!
//! ```text
//! // lint: allow(L003): reason the exception is sound
//! ```
//!
//! The reason is mandatory — an escape without one is itself a violation
//! (`no blanket allowlists`). Structural exemptions are limited to: test
//! code (files under `tests/`, `#[cfg(test)]` regions) for
//! L002/L003/L005/L006; `crates/bench` for L003 and L006 (it is the
//! measurement harness: wall clocks are its subject matter, and its load
//! drivers model external clients that by definition live off the pool);
//! and `crates/runtime` + `crates/net` for L006 (they *are* the thread
//! layer everything else is forbidden from reimplementing).

use crate::lexer::{lex, Kind, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// One reported violation. The file path is attached by the caller.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

/// A `pub` field of a `pub struct *Config`, for the cross-file L004 check.
#[derive(Debug, Clone)]
pub struct ConfigField {
    pub strukt: String,
    pub field: String,
    pub line: u32,
}

/// Everything the per-file rules need, computed once per file.
pub struct FileCtx {
    /// Repo-relative path with forward slashes (`crates/net/src/delay.rs`).
    pub path: String,
    toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens.
    code: Vec<usize>,
    /// line → comment texts on that line.
    comments: BTreeMap<u32, Vec<String>>,
    /// Lines containing at least one code token.
    code_lines: BTreeSet<u32>,
    /// Lines whose first code token is `#` (attribute lines).
    attr_lines: BTreeSet<u32>,
    /// Line ranges (inclusive) of `#[cfg(test)]` items.
    test_regions: Vec<(u32, u32)>,
    /// rule → lines where an allow escape applies.
    allows: BTreeMap<String, BTreeSet<u32>>,
    /// Escapes with a missing/empty reason (reported as violations).
    bad_escapes: Vec<u32>,
}

impl FileCtx {
    pub fn new(path: &str, src: &str) -> Self {
        let toks = lex(src);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();

        let mut comments: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        let mut code_lines = BTreeSet::new();
        let mut attr_lines = BTreeSet::new();
        for t in &toks {
            if t.is_comment() {
                comments.entry(t.line).or_default().push(t.text.clone());
            } else {
                if !code_lines.contains(&t.line) && t.is_punct('#') {
                    attr_lines.insert(t.line);
                }
                code_lines.insert(t.line);
            }
        }

        let mut ctx = FileCtx {
            path: path.to_string(),
            toks,
            code,
            comments,
            code_lines,
            attr_lines,
            test_regions: Vec::new(),
            allows: BTreeMap::new(),
            bad_escapes: Vec::new(),
        };
        ctx.find_test_regions();
        ctx.find_allows();
        ctx
    }

    fn ct(&self, ci: usize) -> &Tok {
        &self.toks[self.code[ci]]
    }

    fn code_len(&self) -> usize {
        self.code.len()
    }

    /// `#[cfg(test)] <item> { … }` regions, by line span.
    fn find_test_regions(&mut self) {
        let n = self.code_len();
        let mut i = 0;
        while i + 3 < n {
            // Match `# [ cfg ( … test … ) ]`.
            if self.ct(i).is_punct('#')
                && self.ct(i + 1).is_punct('[')
                && self.ct(i + 2).is_ident("cfg")
                && self.ct(i + 3).is_punct('(')
            {
                let start_line = self.ct(i).line;
                // Scan the attribute group for the ident `test`.
                let mut j = i + 4;
                let mut depth = 1usize;
                let mut has_test = false;
                while j < n && depth > 0 {
                    let t = self.ct(j);
                    if t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct(')') {
                        depth -= 1;
                    } else if depth == 1 && t.is_ident("test") {
                        has_test = true;
                    }
                    j += 1;
                }
                // Expect the closing `]`.
                if has_test && j < n && self.ct(j).is_punct(']') {
                    j += 1;
                    // Skip further attributes on the same item.
                    while j + 1 < n && self.ct(j).is_punct('#') && self.ct(j + 1).is_punct('[') {
                        let mut d = 0usize;
                        j += 1;
                        while j < n {
                            if self.ct(j).is_punct('[') {
                                d += 1;
                            } else if self.ct(j).is_punct(']') {
                                d -= 1;
                                if d == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                    // The item body: first `{` before any top-level `;`.
                    let mut k = j;
                    let mut found_body = None;
                    while k < n {
                        let t = self.ct(k);
                        if t.is_punct('{') {
                            found_body = Some(k);
                            break;
                        }
                        if t.is_punct(';') {
                            break; // e.g. `#[cfg(test)] mod tests;`
                        }
                        k += 1;
                    }
                    if let Some(open) = found_body {
                        let mut d = 0usize;
                        let mut m = open;
                        while m < n {
                            if self.ct(m).is_punct('{') {
                                d += 1;
                            } else if self.ct(m).is_punct('}') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            m += 1;
                        }
                        let end_line = if m < n { self.ct(m).line } else { u32::MAX };
                        self.test_regions.push((start_line, end_line));
                        i = m;
                    }
                }
            }
            i += 1;
        }
    }

    /// Parse `lint: allow(LXXX[, LYYY]): reason` escapes out of comments.
    /// An escape covers its own line and the next line with code on it.
    fn find_allows(&mut self) {
        let entries: Vec<(u32, String)> = self
            .comments
            .iter()
            .flat_map(|(&line, texts)| texts.iter().map(move |t| (line, t.clone())))
            .collect();
        for (line, text) in entries {
            let Some(at) = text.find("lint: allow(") else {
                continue;
            };
            let rest = &text[at + "lint: allow(".len()..];
            let Some(close) = rest.find(')') else {
                self.bad_escapes.push(line);
                continue;
            };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let after = rest[close + 1..].trim_start();
            let reason_ok = after.starts_with(':') && !after[1..].trim().is_empty();
            if rules.is_empty() || !reason_ok {
                self.bad_escapes.push(line);
                continue;
            }
            let mut covered: BTreeSet<u32> = BTreeSet::new();
            covered.insert(line);
            if let Some(&next_code) = self.code_lines.iter().find(|&&l| l > line) {
                covered.insert(next_code);
            }
            for r in rules {
                self.allows.entry(r).or_default().extend(covered.iter());
            }
        }
    }

    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(rule).is_some_and(|s| s.contains(&line))
    }

    /// True inside a `#[cfg(test)]` region or a test-only file.
    fn in_test(&self, line: u32) -> bool {
        self.is_test_file()
            || self
                .test_regions
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
    }

    fn is_test_file(&self) -> bool {
        self.path.split('/').any(|c| c == "tests") || self.path.ends_with("_test.rs")
    }

    fn is_bench_crate(&self) -> bool {
        self.path.starts_with("crates/bench/")
    }

    /// Escapes with no reason are violations in their own right: the whole
    /// point of per-site escapes is that each one argues its case.
    pub fn escape_violations(&self) -> Vec<Violation> {
        self.bad_escapes
            .iter()
            .map(|&line| Violation {
                line,
                rule: "L000",
                msg: "lint escape must name rule(s) and give a reason: \
                      `// lint: allow(LXXX): why this site is sound`"
                    .into(),
            })
            .collect()
    }

    fn report(&self, out: &mut Vec<Violation>, rule: &'static str, line: u32, msg: String) {
        if !self.allowed(rule, line) {
            out.push(Violation { line, rule, msg });
        }
    }

    // ---------------------------------------------------------------- L001

    /// No `std::sync::{Mutex, RwLock}` — product code must take locks
    /// through the vendored `parking_lot`, which is where the rank
    /// annotations and the `CB_SANITIZE` deadlock sanitizer live.
    pub fn l001_std_locks(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let n = self.code_len();
        let mut i = 0;
        while i + 5 < n {
            let is_std_sync = self.ct(i).is_ident("std")
                && self.ct(i + 1).is_punct(':')
                && self.ct(i + 2).is_punct(':')
                && self.ct(i + 3).is_ident("sync")
                && self.ct(i + 4).is_punct(':')
                && self.ct(i + 5).is_punct(':');
            if is_std_sync {
                let j = i + 6;
                if j < n {
                    let t = self.ct(j);
                    if t.is_ident("Mutex") || t.is_ident("RwLock") {
                        self.report(
                            &mut out,
                            "L001",
                            t.line,
                            format!(
                                "std::sync::{} is banned in product crates; use parking_lot::{} \
                                 (ranked, sanitizer-aware)",
                                t.text, t.text
                            ),
                        );
                    } else if t.is_punct('{') {
                        // use std::sync::{…, Mutex, …}
                        let mut d = 1usize;
                        let mut k = j + 1;
                        while k < n && d > 0 {
                            let u = self.ct(k);
                            if u.is_punct('{') {
                                d += 1;
                            } else if u.is_punct('}') {
                                d -= 1;
                            } else if u.is_ident("Mutex") || u.is_ident("RwLock") {
                                self.report(
                                    &mut out,
                                    "L001",
                                    u.line,
                                    format!(
                                        "std::sync::{} is banned in product crates; use \
                                         parking_lot::{} (ranked, sanitizer-aware)",
                                        u.text, u.text
                                    ),
                                );
                            }
                            k += 1;
                        }
                    }
                }
            }
            i += 1;
        }
        out
    }

    // ---------------------------------------------------------------- L002

    /// Every `Mutex`/`RwLock` struct field (or enum-variant payload) must
    /// carry a `// lock-rank: <N> <name>` annotation. The annotation is the
    /// human-readable half of the contract the sanitizer enforces at
    /// runtime; a lock without one is a lock nobody placed in the
    /// hierarchy.
    pub fn l002_lock_rank(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let n = self.code_len();
        let mut i = 0;
        while i < n {
            let t = self.ct(i);
            if (t.is_ident("struct") || t.is_ident("enum")) && i + 1 < n {
                if let Some(next) = self.body_of_item(i) {
                    self.check_body_fields(i, next, &mut out);
                    i = next.1; // resume after the body
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    /// For an item starting at `struct`/`enum` keyword index `ki`, find its
    /// body `{…}` or tuple `(…)` span as (open, close) code indices.
    /// Returns None for unit structs / items without a body.
    fn body_of_item(&self, ki: usize) -> Option<(usize, usize)> {
        let n = self.code_len();
        let mut j = ki + 1;
        // Scan the header for the first `{`, `(`, or `;` outside generics.
        let mut angle = 0i32;
        while j < n {
            let t = self.ct(j);
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                // Don't let `->` in fn-pointer generic args close an angle.
                if !(j > 0 && self.ct(j - 1).is_punct('-')) {
                    angle -= 1;
                }
            } else if angle <= 0 {
                if t.is_punct(';') {
                    return None;
                }
                if t.is_punct('{') || t.is_punct('(') {
                    break;
                }
            }
            j += 1;
        }
        if j >= n {
            return None;
        }
        let (open_c, close_c) = if self.ct(j).is_punct('{') {
            ('{', '}')
        } else {
            ('(', ')')
        };
        let mut d = 0usize;
        let mut k = j;
        while k < n {
            let t = self.ct(k);
            if t.is_punct(open_c) {
                d += 1;
            } else if t.is_punct(close_c) {
                d -= 1;
                if d == 0 {
                    return Some((j, k));
                }
            }
            k += 1;
        }
        None
    }

    /// Split a struct/enum body into top-level comma-separated chunks and
    /// flag any chunk whose type tokens mention `Mutex`/`RwLock` but whose
    /// attached comments lack a `lock-rank:` annotation.
    fn check_body_fields(
        &self,
        _ki: usize,
        (open, close): (usize, usize),
        out: &mut Vec<Violation>,
    ) {
        let mut chunk_start = open + 1;
        let mut depth = 0i32; // (), [], {} nesting inside the body
        let mut angle = 0i32;
        let mut j = open + 1;
        while j <= close {
            let t = self.ct(j);
            let at_end = j == close;
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(j > 0 && self.ct(j - 1).is_punct('-')) {
                angle -= 1;
            }
            let chunk_ends = at_end || (t.is_punct(',') && depth <= 0 && angle <= 0);
            if chunk_ends {
                if chunk_start < j {
                    self.check_field_chunk(chunk_start, j, out);
                }
                chunk_start = j + 1;
                angle = 0;
            }
            j += 1;
        }
    }

    fn check_field_chunk(&self, start: usize, end: usize, out: &mut Vec<Violation>) {
        // Does the chunk mention a lock type at all?
        let mut lock_tok: Option<&Tok> = None;
        let mut name: Option<&str> = None;
        let mut seen_colon_at_zero = false;
        let mut depth = 0i32;
        let mut angle = 0i32;
        for j in start..end {
            let t = self.ct(j);
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(j > 0 && self.ct(j - 1).is_punct('-')) {
                angle -= 1;
            } else if t.is_punct(':')
                && depth == 0
                && angle == 0
                && !seen_colon_at_zero
                // `::` paths: a colon adjacent to another colon isn't the
                // field separator.
                && !(j + 1 < end && self.ct(j + 1).is_punct(':'))
                && !(j > start && self.ct(j - 1).is_punct(':'))
            {
                seen_colon_at_zero = true;
                // Field name = last ident before the separating colon.
                name = (start..j)
                    .rev()
                    .map(|k| self.ct(k))
                    .find(|u| u.kind == Kind::Ident)
                    .map(|u| u.text.as_str());
            } else if (t.is_ident("Mutex") || t.is_ident("RwLock")) && lock_tok.is_none() {
                lock_tok = Some(t);
            }
        }
        let Some(lock) = lock_tok else { return };
        let first_line = self.ct(start).line;
        let last_line = self.ct(end.saturating_sub(1)).line.max(first_line);
        if self.in_test(first_line) {
            return;
        }
        if self.has_lock_rank_annotation(first_line, last_line) {
            return;
        }
        let label = name.unwrap_or("<variant>");
        self.report(
            out,
            "L002",
            first_line,
            format!(
                "field `{}` holds a {} but has no `// lock-rank: <N> <name>` annotation \
                 (and the matching `::ranked(N, \"name\", …)` constructor)",
                label, lock.text
            ),
        );
    }

    /// Look for `lock-rank: <digits> <name>` in comments trailing the field
    /// lines or in the contiguous comment/attribute block above it.
    fn has_lock_rank_annotation(&self, first_line: u32, last_line: u32) -> bool {
        let check = |line: u32| -> bool {
            self.comments
                .get(&line)
                .is_some_and(|cs| cs.iter().any(|c| comment_has_lock_rank(c)))
        };
        for l in first_line..=last_line {
            if check(l) {
                return true;
            }
        }
        // Walk upward through pure-comment and attribute lines.
        let mut l = first_line.saturating_sub(1);
        while l >= 1 {
            let has_code = self.code_lines.contains(&l);
            let is_attr = self.attr_lines.contains(&l);
            let has_comment = self.comments.contains_key(&l);
            if has_code && !is_attr {
                break;
            }
            if check(l) {
                return true;
            }
            if !has_code && !has_comment {
                break; // blank line ends the attached block
            }
            l -= 1;
        }
        false
    }

    // ---------------------------------------------------------------- L003

    /// No ambient nondeterminism in product code: wall clocks and entropy
    /// must flow in through config (seeds, injected clocks) so runs are
    /// replayable. The bench crate is structurally exempt — it is the
    /// measurement harness, and wall-clock time is its subject matter.
    pub fn l003_nondeterminism(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        if self.is_bench_crate() {
            return out;
        }
        let n = self.code_len();
        for i in 0..n {
            let t = self.ct(i);
            let hit: Option<String> = if t.is_ident("now")
                && i >= 3
                && self.ct(i - 1).is_punct(':')
                && self.ct(i - 2).is_punct(':')
                && (self.ct(i - 3).is_ident("Instant") || self.ct(i - 3).is_ident("SystemTime"))
            {
                Some(format!("{}::now", self.ct(i - 3).text))
            } else if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("OsRng")
            {
                Some(t.text.clone())
            } else if t.is_ident("random")
                && i >= 3
                && self.ct(i - 1).is_punct(':')
                && self.ct(i - 2).is_punct(':')
                && self.ct(i - 3).is_ident("rand")
            {
                Some("rand::random".into())
            } else {
                None
            };
            if let Some(what) = hit {
                if self.in_test(t.line) {
                    continue;
                }
                self.report(
                    &mut out,
                    "L003",
                    t.line,
                    format!(
                        "`{what}` is ambient nondeterminism; take a seed/clock from config, \
                         or argue the exception inline"
                    ),
                );
            }
        }
        out
    }

    // ---------------------------------------------------------------- L004

    /// Collect `pub` fields of `pub struct *Config` items. The cross-file
    /// check against ARCHITECTURE.md happens in `main`.
    pub fn l004_config_fields(&self) -> Vec<ConfigField> {
        let mut out = Vec::new();
        let n = self.code_len();
        for i in 0..n {
            if !self.ct(i).is_ident("struct") {
                continue;
            }
            // `pub struct` (possibly `pub(crate) struct` — skip those, the
            // knob index documents the public surface).
            if i == 0 || !self.ct(i - 1).is_ident("pub") {
                continue;
            }
            let Some(name_tok) = (i + 1 < n).then(|| self.ct(i + 1)) else {
                continue;
            };
            if name_tok.kind != Kind::Ident || !name_tok.text.ends_with("Config") {
                continue;
            }
            if self.in_test(name_tok.line) {
                continue;
            }
            let Some((open, close)) = self.body_of_item(i) else {
                continue;
            };
            if !self.ct(open).is_punct('{') {
                continue; // tuple Config structs have no named knobs
            }
            // Find `pub <ident> :` at field level.
            let mut depth = 0i32;
            let mut angle = 0i32;
            for j in open + 1..close {
                let t = self.ct(j);
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') && !self.ct(j - 1).is_punct('-') {
                    angle -= 1;
                } else if depth == 0
                    && angle == 0
                    && t.is_ident("pub")
                    && j + 2 < close
                    && self.ct(j + 1).kind == Kind::Ident
                    && self.ct(j + 2).is_punct(':')
                    && !(j + 3 < close && self.ct(j + 3).is_punct(':'))
                {
                    out.push(ConfigField {
                        strukt: name_tok.text.clone(),
                        field: self.ct(j + 1).text.clone(),
                        line: self.ct(j + 1).line,
                    });
                }
            }
        }
        out
    }

    // ---------------------------------------------------------------- L005

    /// `.unwrap()`/`.expect(…)` directly on a channel or lock operation in
    /// non-test code turns a peer shutting down into a panic in an
    /// unrelated thread. Handle the `Err`/`None` (usually: shut down
    /// quietly) or argue the exception inline.
    pub fn l005_channel_unwraps(&self) -> Vec<Violation> {
        const METHODS: &[&str] = &[
            "send",
            "try_send",
            "recv",
            "try_recv",
            "recv_timeout",
            "recv_deadline",
            "lock",
            "try_lock",
            "try_read",
            "try_write",
        ];
        let mut out = Vec::new();
        let n = self.code_len();
        for i in 2..n {
            let t = self.ct(i);
            if !(t.is_ident("unwrap") || t.is_ident("expect")) || !self.ct(i - 1).is_punct('.') {
                continue;
            }
            // Walk back over the receiver's argument list: `meth ( … )`.
            if !self.ct(i - 2).is_punct(')') {
                continue;
            }
            let mut d = 0usize;
            let mut k = i - 2;
            loop {
                if self.ct(k).is_punct(')') {
                    d += 1;
                } else if self.ct(k).is_punct('(') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return out; // unbalanced; give up on this file
                }
                k -= 1;
            }
            if k < 2 {
                continue;
            }
            let meth = self.ct(k - 1);
            if meth.kind == Kind::Ident
                && METHODS.contains(&meth.text.as_str())
                && self.ct(k - 2).is_punct('.')
            {
                if self.in_test(t.line) {
                    continue;
                }
                self.report(
                    &mut out,
                    "L005",
                    t.line,
                    format!(
                        "`.{}(…).{}()` on a channel/lock result panics on disconnect; \
                         handle the failure or argue the exception inline",
                        meth.text, t.text
                    ),
                );
            }
        }
        out
    }

    // ---------------------------------------------------------------- L006

    /// No raw OS threads in product crates. Actors are mailbox-driven and
    /// run on the shared work-stealing pool (`cloudburst_runtime::Runtime`),
    /// which is what keeps actor count decoupled from thread count — a
    /// stray `thread::spawn` reintroduces exactly the thread-per-actor
    /// scaling wall the runtime exists to remove. Structurally exempt:
    /// `crates/runtime` (the pool itself), `crates/net` (the delivery
    /// runtime under the pool), `crates/bench` (load drivers model
    /// external clients), and test code. Anything else must argue its
    /// case with a `// lint: allow(L006): reason` escape.
    pub fn l006_thread_spawns(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        if self.path.starts_with("crates/runtime/")
            || self.path.starts_with("crates/net/")
            || self.is_bench_crate()
        {
            return out;
        }
        let n = self.code_len();
        for i in 3..n {
            let t = self.ct(i);
            // `thread :: spawn` and `thread :: Builder` (the latter catches
            // every `Builder::new().name(…).spawn(…)` chain at its root,
            // including the `use std::thread::Builder;` import form).
            let hit = (t.is_ident("spawn") || t.is_ident("Builder"))
                && self.ct(i - 1).is_punct(':')
                && self.ct(i - 2).is_punct(':')
                && self.ct(i - 3).is_ident("thread");
            if !hit || self.in_test(t.line) {
                continue;
            }
            self.report(
                &mut out,
                "L006",
                t.line,
                format!(
                    "`thread::{}` spawns a raw OS thread; product actors run on the \
                     shared runtime pool (`cloudburst_runtime::Runtime::start`) so \
                     actor count stays decoupled from thread count",
                    t.text
                ),
            );
        }
        out
    }
}

/// `lock-rank:` followed by an integer rank and a non-empty name.
fn comment_has_lock_rank(c: &str) -> bool {
    let Some(at) = c.find("lock-rank:") else {
        return false;
    };
    let rest = c[at + "lock-rank:".len()..].trim_start();
    let digits: String = rest.chars().take_while(|ch| ch.is_ascii_digit()).collect();
    if digits.is_empty() {
        // `lock-rank: (caller-declared)`-style deferrals don't count as an
        // annotation; those sites must carry an explicit allow escape.
        return false;
    }
    rest[digits.len()..].split_whitespace().next().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("crates/fake/src/lib.rs", src)
    }

    // ------------------------------------------------------------- L001

    #[test]
    fn l001_flags_direct_path() {
        let c = ctx("fn f() { let m = std::sync::Mutex::new(0); }");
        assert_eq!(c.l001_std_locks().len(), 1);
    }

    #[test]
    fn l001_flags_grouped_import() {
        let c = ctx("use std::sync::{Arc, Mutex, atomic::AtomicU64};");
        let v = c.l001_std_locks();
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("parking_lot::Mutex"));
    }

    #[test]
    fn l001_flags_rwlock_and_respects_allow() {
        let c = ctx("// lint: allow(L001): interop shim for a std-only API\n\
             use std::sync::RwLock;\n\
             use std::sync::Mutex;\n");
        let v = c.l001_std_locks();
        assert_eq!(v.len(), 1, "allow covers only the next code line");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn l001_ignores_other_std_sync_items() {
        let c = ctx("use std::sync::{Arc, OnceLock, atomic::Ordering}; use std::sync::mpsc;");
        assert!(c.l001_std_locks().is_empty());
    }

    #[test]
    fn l001_ignores_strings_and_comments() {
        let c = ctx("// std::sync::Mutex in a comment\nlet s = \"std::sync::Mutex\";");
        assert!(c.l001_std_locks().is_empty());
    }

    // ------------------------------------------------------------- L002

    #[test]
    fn l002_flags_unannotated_field() {
        let c = ctx("struct S { state: Mutex<u32>, other: u32 }");
        let v = c.l002_lock_rank();
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("`state`"));
    }

    #[test]
    fn l002_accepts_annotation_above() {
        let c = ctx("struct S {\n\
                 /// Doc comment.\n\
                 // lock-rank: 40 cache-shard\n\
                 state: Mutex<u32>,\n\
             }");
        assert!(c.l002_lock_rank().is_empty());
    }

    #[test]
    fn l002_accepts_trailing_annotation() {
        let c = ctx("struct S { state: Mutex<u32>, // lock-rank: 7 s-state\n }");
        assert!(c.l002_lock_rank().is_empty());
    }

    #[test]
    fn l002_flags_enum_variant_payload() {
        let c = ctx("enum E { A, Direct(Arc<Mutex<Option<u32>>>), B }");
        assert_eq!(c.l002_lock_rank().len(), 1);
    }

    #[test]
    fn l002_generic_field_types_do_not_split_fields() {
        // The comma inside HashMap<K, V> must not be taken as a field
        // separator (which would orphan the annotation from the type).
        let c = ctx("struct S {\n\
                 // lock-rank: 3 s-map\n\
                 map: Mutex<HashMap<String, Vec<u8>>>,\n\
             }");
        assert!(c.l002_lock_rank().is_empty());
    }

    #[test]
    fn l002_ignores_test_code_and_guards() {
        let c = ctx(
            "#[cfg(test)]\nmod tests {\n    struct S { m: Mutex<u32> }\n}\n\
             struct T { g: MutexGuard<'static, u32> }",
        );
        assert!(c.l002_lock_rank().is_empty());
    }

    #[test]
    fn l002_rank_annotation_requires_numeric_rank() {
        let c = ctx("struct S {\n\
                 // lock-rank: (deferred)\n\
                 state: Mutex<u32>,\n\
             }");
        assert_eq!(c.l002_lock_rank().len(), 1, "non-numeric rank is no rank");
    }

    // ------------------------------------------------------------- L003

    #[test]
    fn l003_flags_clock_and_rng() {
        let c = ctx(
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); \
             let r = thread_rng(); }",
        );
        assert_eq!(c.l003_nondeterminism().len(), 3);
    }

    #[test]
    fn l003_exempts_tests_and_bench() {
        let c = ctx("#[cfg(test)]\nmod tests {\n fn f() { let t = Instant::now(); }\n}");
        assert!(c.l003_nondeterminism().is_empty());
        let b = FileCtx::new(
            "crates/bench/src/fig9.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(b.l003_nondeterminism().is_empty());
    }

    #[test]
    fn l003_allow_escape_with_reason() {
        let c = ctx("fn f() {\n\
             // lint: allow(L003): timeline epoch; never compared across runs\n\
             let t = Instant::now();\n}");
        assert!(c.l003_nondeterminism().is_empty());
    }

    #[test]
    fn l003_escape_without_reason_is_a_violation() {
        let c = ctx("fn f() {\n// lint: allow(L003)\nlet t = Instant::now();\n}");
        assert_eq!(c.l003_nondeterminism().len(), 1, "escape must not apply");
        assert_eq!(c.escape_violations().len(), 1, "and is itself reported");
    }

    #[test]
    fn l003_ignores_unrelated_now_methods() {
        let c = ctx("fn f(clock: &SimClock) { let t = clock.now(); let n = now(); }");
        assert!(c.l003_nondeterminism().is_empty());
    }

    // ------------------------------------------------------------- L004

    #[test]
    fn l004_collects_pub_config_fields_only() {
        let c = ctx(
            "pub struct FooConfig { pub alpha: u32, beta: u32, pub gamma: bool }\n\
             struct PrivConfig { pub hidden: u32 }\n\
             pub struct NotAKnob { pub x: u32 }",
        );
        let fields = c.l004_config_fields();
        let names: Vec<&str> = fields.iter().map(|f| f.field.as_str()).collect();
        assert_eq!(names, ["alpha", "gamma"]);
        assert!(fields.iter().all(|f| f.strukt == "FooConfig"));
    }

    #[test]
    fn l004_skips_test_configs() {
        let c = ctx("#[cfg(test)]\nmod tests {\n pub struct TestConfig { pub x: u32 }\n}");
        assert!(c.l004_config_fields().is_empty());
    }

    // ------------------------------------------------------------- L005

    #[test]
    fn l005_flags_channel_unwrap_and_expect() {
        let c = ctx("fn f(tx: Sender<u32>) { tx.send(1).unwrap(); tx.send(2).expect(\"x\"); }");
        assert_eq!(c.l005_channel_unwraps().len(), 2);
    }

    #[test]
    fn l005_flags_recv_and_try_lock_with_nested_args() {
        let c =
            ctx("fn f() { let v = rx.recv_timeout(dur(5, 6)).unwrap(); m.try_lock().unwrap(); }");
        assert_eq!(c.l005_channel_unwraps().len(), 2);
    }

    #[test]
    fn l005_ignores_other_unwraps_and_tests() {
        let c = ctx("fn f() { let x = parse(input).unwrap(); opt.unwrap(); }\n\
             #[cfg(test)]\nmod tests { fn g() { tx.send(1).unwrap(); } }");
        assert!(c.l005_channel_unwraps().is_empty());
    }

    #[test]
    fn l005_allow_escape() {
        let c = ctx("fn f(tx: Sender<u32>) {\n\
             // lint: allow(L005): receiver outlives all senders by construction\n\
             tx.send(1).unwrap();\n}");
        assert!(c.l005_channel_unwraps().is_empty());
    }

    // ------------------------------------------------------------- L006

    #[test]
    fn l006_flags_spawn_and_builder_in_product_code() {
        let c = ctx("fn f() { std::thread::spawn(|| {}); }\n\
             fn g() { thread::Builder::new().name(n).spawn(|| {}).unwrap(); }");
        let v = c.l006_thread_spawns();
        assert_eq!(v.len(), 2);
        assert!(v[0].msg.contains("thread::spawn"));
        assert!(v[1].msg.contains("thread::Builder"));
    }

    #[test]
    fn l006_exempts_runtime_net_bench_and_tests() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        for path in [
            "crates/runtime/src/lib.rs",
            "crates/net/src/transport.rs",
            "crates/bench/src/fig7.rs",
            "crates/anna/tests/cluster.rs",
        ] {
            let c = FileCtx::new(path, src);
            assert!(c.l006_thread_spawns().is_empty(), "{path} must be exempt");
        }
        let c = ctx("#[cfg(test)]\nmod tests {\n fn f() { std::thread::spawn(|| {}); }\n}");
        assert!(c.l006_thread_spawns().is_empty());
    }

    #[test]
    fn l006_allow_escape_with_reason() {
        let c = ctx("fn f() {\n\
             // lint: allow(L006): long-lived monitor loop; never scales with actors\n\
             std::thread::spawn(|| {});\n}");
        assert!(c.l006_thread_spawns().is_empty());
    }

    #[test]
    fn l006_ignores_pool_spawn_and_unrelated_idents() {
        let c = ctx(
            "fn f(rt: &Runtime) { rt.spawn(\"a\", actor); scope.spawn(|| {}); \
             let b = Builder::new(); }",
        );
        assert!(c.l006_thread_spawns().is_empty());
    }

    // -------------------------------------------------------- test regions

    #[test]
    fn integration_test_paths_are_test_context() {
        let c = FileCtx::new(
            "crates/net/tests/fabric.rs",
            "fn f() { let t = Instant::now(); tx.send(1).unwrap(); }",
        );
        assert!(c.l003_nondeterminism().is_empty());
        assert!(c.l005_channel_unwraps().is_empty());
    }

    #[test]
    fn cfg_test_region_spans_nested_braces() {
        let c = ctx("fn prod() { tx.send(1).unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn a() { if x { tx.send(2).unwrap(); } }\n\
                 fn b() { tx.send(3).unwrap(); }\n\
             }");
        let v = c.l005_channel_unwraps();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }
}

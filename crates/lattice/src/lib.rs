//! Lattice data types for the Cloudburst stateful-FaaS reproduction.
//!
//! Cloudburst (Sreekanti et al., VLDB 2020) stores *all* shared state in the
//! Anna key-value store, whose values are **join semilattices**: types with a
//! `join` (merge) operator that is *associative*, *commutative*, and
//! *idempotent* (ACI). Because merge is insensitive to the batching, ordering,
//! and repetition of requests, replicas can accept writes independently and
//! converge without coordination — the CvRDT approach of Shapiro et al.
//!
//! This crate provides:
//!
//! * The [`Lattice`] trait and primitive lattices:
//!   [`MaxLattice`], [`BoolOrLattice`], [`SetLattice`], [`MapLattice`],
//!   [`CounterLattice`].
//! * [`Timestamp`]s and the last-writer-wins lattice [`LwwLattice`] used for
//!   Cloudburst's default consistency mode (paper §5.2).
//! * [`VectorClock`]s and the multi-value causal lattice [`CausalLattice`]
//!   (vector clock + dependency set + value set) used for causal modes
//!   (paper §5.2–5.3).
//! * [`Capsule`]: the *lattice capsule* that transparently wraps opaque user
//!   program state (bytes) in one of the above lattices so Anna can merge
//!   concurrent updates without user involvement (paper contribution #3).
//!
//! All types in this crate are purely algorithmic (no I/O, no threads) and are
//! exercised by property tests asserting the ACI laws.

#![warn(missing_docs)]

pub mod capsule;
pub mod causal;
pub mod codec;
pub mod counter;
pub mod key;
pub mod lww;
pub mod map;
pub mod max;
pub mod set;
pub mod timestamp;
pub mod traits;
pub mod vector_clock;

pub use capsule::{Capsule, CapsuleError, ConsistencyKind};
pub use causal::CausalLattice;
pub use codec::CodecError;
pub use counter::CounterLattice;
pub use key::Key;
pub use lww::LwwLattice;
pub use map::MapLattice;
pub use max::{BoolOrLattice, MaxLattice};
pub use set::SetLattice;
pub use timestamp::{Timestamp, TimestampGenerator};
pub use traits::{BottomLattice, Lattice};
pub use vector_clock::{CausalOrder, VectorClock};

//! Durable byte codec for [`Capsule`]s and the primitives the storage
//! engine's on-disk formats are built from.
//!
//! The LSM tier (`cloudburst_anna::lsm`) persists lattice state in WAL
//! records and SSTable blocks. Everything on disk is encoded through this
//! module: little-endian fixed-width integers, length-prefixed byte strings,
//! and a tagged [`Capsule`] encoding that round-trips every lattice kind.
//!
//! Decoding is **total**: every read is bounds-checked and returns
//! [`CodecError`] instead of panicking, because the decoder's input is
//! whatever survived a crash — torn tails, truncated buffers, and bit rot
//! included. Framing-level integrity (CRCs) lives with the file formats; the
//! [`crc32`] helper is here so WAL and SSTable guard their frames the same
//! way.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::capsule::Capsule;
use crate::causal::CausalLattice;
use crate::key::Key;
use crate::lww::LwwLattice;
use crate::set::SetLattice;
use crate::timestamp::Timestamp;
use crate::traits::Lattice;
use crate::vector_clock::VectorClock;

/// Why a decode failed. Decoders never panic on malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced content did.
    Truncated,
    /// An unknown capsule/record tag byte.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => f.write_str("buffer truncated"),
            Self::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            Self::BadUtf8 => f.write_str("invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte string (`u32` length + raw bytes).
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// A bounds-checked cursor over an encoded buffer.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    /// Read a length-prefixed byte string as a borrowed slice.
    pub fn byte_slice(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed byte string as owned [`Bytes`].
    pub fn bytes(&mut self) -> Result<Bytes, CodecError> {
        Ok(Bytes::copy_from_slice(self.byte_slice()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.byte_slice()?).map_err(|_| CodecError::BadUtf8)
    }
}

/// CRC-32 (IEEE 802.3, the polynomial used by zip/zlib) over `data`.
/// Guards WAL frames and SSTable metadata blocks against torn writes and
/// bit rot; a failed check marks where a recovering reader must stop.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut bit = 0;
            while bit < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                bit += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

const TAG_LWW: u8 = 0;
const TAG_CAUSAL: u8 = 1;
const TAG_SET: u8 = 2;

fn put_vector_clock(out: &mut Vec<u8>, vc: &VectorClock) {
    put_u32(out, vc.len() as u32);
    for (&id, &clock) in vc.iter() {
        put_u64(out, id);
        put_u64(out, clock);
    }
}

fn read_vector_clock(r: &mut ByteReader<'_>) -> Result<VectorClock, CodecError> {
    let n = r.u32()? as usize;
    let mut entries = Vec::with_capacity(n.min(r.remaining() / 16 + 1));
    for _ in 0..n {
        let id = r.u64()?;
        let clock = r.u64()?;
        entries.push((id, clock));
    }
    Ok(entries.into_iter().collect())
}

/// Encode a capsule: one tag byte plus the kind-specific body. The encoding
/// is canonical for a given lattice state (versions, dependency maps, and
/// set elements are written in their sorted in-memory order), so equal
/// capsules encode to equal bytes.
pub fn encode_capsule(capsule: &Capsule, out: &mut Vec<u8>) {
    match capsule {
        Capsule::Lww(l) => {
            put_u8(out, TAG_LWW);
            put_u64(out, l.timestamp.clock_micros);
            put_u64(out, l.timestamp.node);
            put_bytes(out, &l.value);
        }
        Capsule::Causal(c) => {
            put_u8(out, TAG_CAUSAL);
            let versions = c.versions();
            put_u32(out, versions.len() as u32);
            for v in versions {
                put_vector_clock(out, &v.vector_clock);
                put_u32(out, v.dependencies.len() as u32);
                for (key, vc) in &v.dependencies {
                    put_str(out, key.as_str());
                    put_vector_clock(out, vc);
                }
                put_bytes(out, &v.value);
            }
        }
        Capsule::Set(s) => {
            put_u8(out, TAG_SET);
            put_u32(out, s.len() as u32);
            for element in s.iter() {
                put_bytes(out, element);
            }
        }
    }
}

/// Decode one capsule from the reader, advancing it past the encoding.
///
/// Never panics: malformed or truncated input yields a [`CodecError`].
/// Decoding a causal capsule re-joins its versions through the lattice
/// merge, so the result is normalized exactly as the encoder's antichain
/// was — `decode(encode(c)) == c` for every kind.
pub fn decode_capsule(r: &mut ByteReader<'_>) -> Result<Capsule, CodecError> {
    match r.u8()? {
        TAG_LWW => {
            let clock_micros = r.u64()?;
            let node = r.u64()?;
            let value = r.bytes()?;
            Ok(Capsule::Lww(LwwLattice::new(
                Timestamp::new(clock_micros, node),
                value,
            )))
        }
        TAG_CAUSAL => {
            let n = r.u32()? as usize;
            let mut lattice = CausalLattice::default();
            for _ in 0..n {
                let vector_clock = read_vector_clock(r)?;
                let ndeps = r.u32()? as usize;
                let mut dependencies: BTreeMap<Key, VectorClock> = BTreeMap::new();
                for _ in 0..ndeps {
                    let key = Key::new(r.str()?);
                    let vc = read_vector_clock(r)?;
                    dependencies.insert(key, vc);
                }
                let value = r.bytes()?;
                // Stored versions form an antichain, so folding single-version
                // joins rebuilds the identical normalized state.
                lattice.join(CausalLattice::new(vector_clock, dependencies, value));
            }
            Ok(Capsule::Causal(lattice))
        }
        TAG_SET => {
            let n = r.u32()? as usize;
            let mut elements = Vec::with_capacity(n.min(r.remaining() / 4 + 1));
            for _ in 0..n {
                elements.push(r.bytes()?);
            }
            Ok(Capsule::Set(
                elements.into_iter().collect::<SetLattice<_>>(),
            ))
        }
        tag => Err(CodecError::BadTag(tag)),
    }
}

/// Convenience: encode `capsule` into a fresh buffer.
pub fn capsule_to_vec(capsule: &Capsule) -> Vec<u8> {
    let mut out = Vec::with_capacity(capsule.payload_len() + 32);
    encode_capsule(capsule, &mut out);
    out
}

/// Convenience: decode a capsule that must span the whole buffer.
pub fn capsule_from_slice(buf: &[u8]) -> Result<Capsule, CodecError> {
    let mut r = ByteReader::new(buf);
    let capsule = decode_capsule(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::Truncated);
    }
    Ok(capsule)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_capsules() -> Vec<Capsule> {
        let mut causal = Capsule::wrap_causal(
            VectorClock::singleton(1, 3),
            [(Key::new("dep-a"), VectorClock::singleton(7, 2))],
            Bytes::from_static(b"left"),
        );
        causal
            .try_join(Capsule::wrap_causal(
                VectorClock::singleton(2, 5),
                [(Key::new("dep-b"), VectorClock::singleton(8, 1))],
                Bytes::from_static(b"right"),
            ))
            .unwrap();
        let mut set = Capsule::wrap_set_element(Bytes::from_static(b"one"));
        set.try_join(Capsule::wrap_set_element(Bytes::from_static(b"two")))
            .unwrap();
        vec![
            Capsule::wrap_lww(Timestamp::new(42, 7), Bytes::from_static(b"hello")),
            Capsule::wrap_lww(Timestamp::ZERO, Bytes::new()),
            causal,
            Capsule::Causal(CausalLattice::default()),
            set,
            Capsule::Set(SetLattice::new()),
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        for capsule in sample_capsules() {
            let encoded = capsule_to_vec(&capsule);
            let decoded = capsule_from_slice(&encoded).expect("decode");
            assert_eq!(decoded, capsule);
        }
    }

    #[test]
    fn multi_version_causal_roundtrips_with_conflicts() {
        let mut c =
            Capsule::wrap_causal(VectorClock::singleton(1, 1), [], Bytes::from_static(b"a"));
        c.try_join(Capsule::wrap_causal(
            VectorClock::singleton(2, 1),
            [],
            Bytes::from_static(b"b"),
        ))
        .unwrap();
        let decoded = capsule_from_slice(&capsule_to_vec(&c)).unwrap();
        let Capsule::Causal(lat) = &decoded else {
            panic!("kind changed");
        };
        assert!(lat.has_conflicts(), "both concurrent versions must survive");
        assert_eq!(decoded, c);
    }

    #[test]
    fn truncation_errors_not_panics() {
        for capsule in sample_capsules() {
            let encoded = capsule_to_vec(&capsule);
            for cut in 0..encoded.len() {
                let err = capsule_from_slice(&encoded[..cut]);
                assert!(err.is_err(), "cut at {cut} must not decode");
            }
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        assert_eq!(capsule_from_slice(&[9]), Err(CodecError::BadTag(9)));
    }

    #[test]
    fn trailing_garbage_is_rejected_by_whole_buffer_decode() {
        let mut buf = capsule_to_vec(&sample_capsules()[0]);
        buf.push(0xAB);
        assert_eq!(capsule_from_slice(&buf), Err(CodecError::Truncated));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn oversized_length_prefix_is_truncation_not_alloc() {
        // A length field claiming 4 GiB must fail cleanly, not allocate.
        let mut buf = vec![TAG_LWW];
        put_u64(&mut buf, 1);
        put_u64(&mut buf, 1);
        put_u32(&mut buf, u32::MAX);
        assert_eq!(capsule_from_slice(&buf), Err(CodecError::Truncated));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::{btree_map, vec as pvec};
    use proptest::prelude::*;

    fn lww_capsule() -> impl Strategy<Value = Capsule> {
        (any::<u32>(), 0u64..4, pvec(any::<u8>(), 0..12)).prop_map(|(clock, node, v)| {
            Capsule::wrap_lww(Timestamp::new(u64::from(clock), node), v.into())
        })
    }

    fn causal_capsule() -> impl Strategy<Value = Capsule> {
        (
            btree_map(0u64..4, 1u64..5, 1..3),
            pvec(any::<u8>(), 0..6),
            btree_map(0u64..3, 1u64..3, 0..3),
            (btree_map(0u64..4, 1u64..5, 1..3), pvec(any::<u8>(), 0..6)),
        )
            .prop_map(|(vc1, v1, dep, (vc2, v2))| {
                let deps: Vec<(Key, VectorClock)> = if dep.is_empty() {
                    vec![]
                } else {
                    vec![(Key::new("dep"), dep.into_iter().collect())]
                };
                let mut c = Capsule::wrap_causal(vc1.into_iter().collect(), deps, v1.into());
                c.try_join(Capsule::wrap_causal(
                    vc2.into_iter().collect(),
                    [],
                    v2.into(),
                ))
                .expect("same kind");
                c
            })
    }

    fn set_capsule() -> impl Strategy<Value = Capsule> {
        pvec(pvec(any::<u8>(), 0..6), 0..5).prop_map(|elements| {
            Capsule::Set(
                elements
                    .into_iter()
                    .map(Bytes::from)
                    .collect::<SetLattice<_>>(),
            )
        })
    }

    proptest! {
        #[test]
        fn lww_roundtrip(c in lww_capsule()) {
            prop_assert_eq!(capsule_from_slice(&capsule_to_vec(&c)).unwrap(), c);
        }

        #[test]
        fn causal_roundtrip(c in causal_capsule()) {
            prop_assert_eq!(capsule_from_slice(&capsule_to_vec(&c)).unwrap(), c);
        }

        #[test]
        fn set_roundtrip(c in set_capsule()) {
            prop_assert_eq!(capsule_from_slice(&capsule_to_vec(&c)).unwrap(), c);
        }

        #[test]
        fn arbitrary_truncation_never_panics(c in causal_capsule(), cut in any::<u16>()) {
            let encoded = capsule_to_vec(&c);
            let cut = (cut as usize) % (encoded.len() + 1);
            // Either decodes (only at full length) or errors; never panics.
            match capsule_from_slice(&encoded[..cut]) {
                Ok(decoded) => prop_assert_eq!(decoded, c),
                Err(_) => prop_assert!(cut < encoded.len()),
            }
        }

        #[test]
        fn random_bytes_never_panic(buf in pvec(any::<u8>(), 0..64)) {
            let _ = capsule_from_slice(&buf);
        }
    }
}

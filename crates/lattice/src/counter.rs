//! [`CounterLattice`]: a grow-only distributed counter (G-counter CRDT).

use std::collections::BTreeMap;

use crate::traits::{BottomLattice, Lattice};

/// A grow-only counter: each node owns a slot that only it increments; the
/// total is the sum of slots, and `join` is the point-wise maximum.
///
/// Anna exposes counters for monotone statistics such as per-DAG call counts
/// tracked by schedulers (paper §4.3) — each scheduler bumps only its own slot
/// so counts merge without coordination.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterLattice {
    slots: BTreeMap<u64, u64>,
}

impl CounterLattice {
    /// An empty (zero) counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment the slot owned by `node` by `amount`.
    pub fn add(&mut self, node: u64, amount: u64) {
        *self.slots.entry(node).or_insert(0) += amount;
    }

    /// The total across all node slots.
    pub fn value(&self) -> u64 {
        self.slots.values().sum()
    }

    /// The contribution of a single node.
    pub fn slot(&self, node: u64) -> u64 {
        self.slots.get(&node).copied().unwrap_or(0)
    }
}

impl Lattice for CounterLattice {
    fn join(&mut self, other: Self) {
        for (node, count) in other.slots {
            let slot = self.slots.entry(node).or_insert(0);
            *slot = (*slot).max(count);
        }
    }
}

impl BottomLattice for CounterLattice {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_sum() {
        let mut c = CounterLattice::new();
        c.add(1, 3);
        c.add(2, 4);
        c.add(1, 1);
        assert_eq!(c.value(), 8);
        assert_eq!(c.slot(1), 4);
    }

    #[test]
    fn join_takes_pointwise_max() {
        // Two replicas that both saw node 1's counter at different times.
        let mut a = CounterLattice::new();
        a.add(1, 5);
        a.add(2, 1);
        let mut b = CounterLattice::new();
        b.add(1, 3);
        b.add(3, 7);
        a.join(b);
        assert_eq!(a.slot(1), 5); // max(5, 3), not 8: same node's slot
        assert_eq!(a.value(), 5 + 1 + 7);
    }

    #[test]
    fn join_is_idempotent_under_redelivery() {
        let mut a = CounterLattice::new();
        a.add(1, 5);
        let snapshot = a.clone();
        a.join(snapshot.clone());
        a.join(snapshot);
        assert_eq!(a.value(), 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::btree_map;
    use proptest::prelude::*;

    fn counter() -> impl Strategy<Value = CounterLattice> {
        btree_map(0u64..6, any::<u32>(), 0..6).prop_map(|m| CounterLattice {
            slots: m.into_iter().map(|(k, v)| (k, u64::from(v))).collect(),
        })
    }

    proptest! {
        #[test]
        fn aci(a in counter(), b in counter(), c in counter()) {
            prop_assert_eq!(
                a.clone().joined(b.clone()).joined(c.clone()),
                a.clone().joined(b.clone().joined(c))
            );
            prop_assert_eq!(a.clone().joined(b.clone()), b.joined(a.clone()));
            prop_assert_eq!(a.clone().joined(a.clone()), a);
        }

        #[test]
        fn join_never_decreases_value(a in counter(), b in counter()) {
            let j = a.clone().joined(b.clone());
            prop_assert!(j.value() >= a.value().max(b.value()));
        }
    }
}

//! [`Key`]: the shared key type used across the whole system.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A key in the Anna key-value store.
///
/// Keys are immutable strings shared across many components (storage nodes,
/// caches, schedulers, dependency sets), so they are reference-counted for
/// cheap cloning: a `Key` clone is an atomic increment, not an allocation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Arc<str>);

impl Key {
    /// Create a key from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Self(Arc::from(s.as_ref()))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:?})", &*self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Self(Arc::from(s))
    }
}

impl From<&String> for Key {
    fn from(s: &String) -> Self {
        Self::new(s)
    }
}

impl Borrow<str> for Key {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Key {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn key_roundtrips() {
        let k = Key::new("user:42");
        assert_eq!(k.as_str(), "user:42");
        assert_eq!(k.to_string(), "user:42");
        assert_eq!(format!("{k:?}"), "Key(\"user:42\")");
    }

    #[test]
    fn key_clone_is_shared() {
        let k = Key::new("a");
        let k2 = k.clone();
        assert!(Arc::ptr_eq(&k.0, &k2.0));
    }

    #[test]
    fn borrow_str_lookup() {
        let mut m: HashMap<Key, u32> = HashMap::new();
        m.insert(Key::new("x"), 1);
        // Borrow<str> lets us look up by &str without allocating.
        assert_eq!(m.get("x"), Some(&1));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Key::new("a") < Key::new("b"));
        assert!(Key::new("a:1") < Key::new("a:2"));
    }
}

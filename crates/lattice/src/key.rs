//! [`Key`]: the shared key type used across the whole system.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hash, Hasher, RandomState};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

/// Number of interner shards; must be a power of two. Key construction is
/// rare compared to key cloning/comparison on the hot path, but sharding
/// keeps bursts of construction (workload generators, rebalance scans) from
/// serializing on one lock.
const INTERN_SHARDS: usize = 16;

/// Initial per-shard size at which dead weak references are purged before
/// inserting, bounding the interner by the live key count.
const PURGE_THRESHOLD: usize = 1024;

#[derive(Default)]
struct InternShard {
    map: HashMap<Box<str>, Weak<str>>,
    /// Adaptive purge trigger: when a purge reclaims little (the shard is
    /// mostly *live* keys), the threshold doubles past the live size so
    /// subsequent inserts stay O(1) instead of re-scanning the shard.
    purge_at: usize,
}

struct Interner {
    // lock-rank: 95 key-intern
    shards: [Mutex<InternShard>; INTERN_SHARDS],
    hasher: RandomState,
}

impl Interner {
    fn global() -> &'static Interner {
        static GLOBAL: std::sync::OnceLock<Interner> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(|| Interner {
            shards: std::array::from_fn(|_| {
                // Near the top of the hierarchy: keys are constructed while
                // holding almost any other lock, and the interner acquires
                // nothing further.
                Mutex::ranked(
                    95,
                    "key-intern",
                    InternShard {
                        map: HashMap::new(),
                        purge_at: PURGE_THRESHOLD,
                    },
                )
            }),
            hasher: RandomState::new(),
        })
    }

    fn intern(&self, s: &str) -> Arc<str> {
        let h = self.hasher.hash_one(s);
        let shard = &mut *self.shards[(h as usize) & (INTERN_SHARDS - 1)].lock();
        if let Some(existing) = shard.map.get(s).and_then(Weak::upgrade) {
            return existing;
        }
        if shard.map.len() >= shard.purge_at {
            shard.map.retain(|_, w| w.strong_count() > 0);
            shard.purge_at = (shard.map.len() * 2).max(PURGE_THRESHOLD);
        }
        let arc: Arc<str> = Arc::from(s);
        shard.map.insert(Box::from(s), Arc::downgrade(&arc));
        arc
    }
}

/// A key in the Anna key-value store.
///
/// Keys are immutable strings shared across many components (storage nodes,
/// caches, schedulers, dependency sets), so they are **interned** and
/// reference-counted: constructing a `Key` for a string already live
/// anywhere in the process returns the same allocation, a clone is an atomic
/// increment, and equality between interned copies is a pointer comparison.
/// The interner holds only weak references, so dropping the last `Key` for a
/// string releases its memory.
#[derive(Clone, PartialOrd, Ord)]
pub struct Key(Arc<str>);

impl Key {
    /// Create a key from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Self(Interner::global().intern(s.as_ref()))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        // Interned keys with equal contents are usually the same allocation.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Content hash, to stay consistent with `Borrow<str>` lookups.
        self.0.hash(state);
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:?})", &*self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Self::new(s)
    }
}

impl From<&String> for Key {
    fn from(s: &String) -> Self {
        Self::new(s)
    }
}

impl Borrow<str> for Key {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Key {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn key_roundtrips() {
        let k = Key::new("user:42");
        assert_eq!(k.as_str(), "user:42");
        assert_eq!(k.to_string(), "user:42");
        assert_eq!(format!("{k:?}"), "Key(\"user:42\")");
    }

    #[test]
    fn key_clone_is_shared() {
        let k = Key::new("a");
        let k2 = k.clone();
        assert!(Arc::ptr_eq(&k.0, &k2.0));
    }

    #[test]
    fn independently_constructed_keys_are_interned() {
        let k1 = Key::new("interned:same");
        let k2 = Key::new(String::from("interned:same"));
        let k3: Key = "interned:same".into();
        assert!(Arc::ptr_eq(&k1.0, &k2.0), "same string must share storage");
        assert!(Arc::ptr_eq(&k1.0, &k3.0));
        assert_ne!(k1, Key::new("interned:other"));
    }

    #[test]
    fn interner_releases_dropped_keys() {
        let text = "interned:transient";
        let weak = {
            let k = Key::new(text);
            Arc::downgrade(&k.0)
        };
        // The interner holds only a weak reference; with the last Key gone
        // the allocation is dead and a new construction re-interns.
        assert!(weak.upgrade().is_none());
        let again = Key::new(text);
        assert_eq!(again.as_str(), text);
    }

    #[test]
    fn borrow_str_lookup() {
        let mut m: HashMap<Key, u32> = HashMap::new();
        m.insert(Key::new("x"), 1);
        // Borrow<str> lets us look up by &str without allocating.
        assert_eq!(m.get("x"), Some(&1));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Key::new("a") < Key::new("b"));
        assert!(Key::new("a:1") < Key::new("a:2"));
    }
}

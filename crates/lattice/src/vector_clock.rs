//! [`VectorClock`]s: the version identity used by causal lattices.

use std::collections::BTreeMap;

use crate::traits::{BottomLattice, Lattice};

/// The result of comparing two vector clocks in the causal partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalOrder {
    /// The clocks are identical.
    Equal,
    /// The left clock dominates (is causally newer than) the right.
    Dominates,
    /// The left clock is dominated by (causally older than) the right.
    DominatedBy,
    /// Neither dominates: the versions are concurrent.
    Concurrent,
}

/// A vector clock: a set of `⟨id, clock⟩` pairs where `id` is the unique ID
/// of the function-executor thread that updated the key and `clock` is a
/// monotonically growing logical clock (paper §5.2).
///
/// `vc1` *dominates* `vc2` if it is at least equal in all entries and greater
/// in at least one; otherwise, if neither dominates, they are *concurrent*.
/// `join` takes the pair-wise maximum of entries.
#[derive(Debug, Clone, PartialEq, Eq, Default, PartialOrd, Ord, Hash)]
pub struct VectorClock {
    entries: BTreeMap<u64, u64>,
}

impl VectorClock {
    /// The empty (zero) clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock with a single entry — the version produced by one writer.
    pub fn singleton(id: u64, clock: u64) -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(id, clock);
        Self { entries }
    }

    /// Advance this writer's logical clock by one and return the new value.
    pub fn increment(&mut self, id: u64) -> u64 {
        let e = self.entries.entry(id).or_insert(0);
        *e += 1;
        *e
    }

    /// The logical clock recorded for `id` (0 if absent: absent entries are
    /// implicitly zero, which keeps clocks of different writer sets
    /// comparable).
    pub fn get(&self, id: u64) -> u64 {
        self.entries.get(&id).copied().unwrap_or(0)
    }

    /// Number of explicit entries (drives the metadata-overhead measurements
    /// of paper §6.2.1: "the size of the vector clock grows linearly with the
    /// number of clients that modified the key").
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the clock has no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate serialized size in bytes (16 bytes per `⟨id, clock⟩`
    /// pair), used for the causal-metadata overhead statistics.
    pub fn metadata_bytes(&self) -> usize {
        self.entries.len() * 16
    }

    /// Compare two clocks in the causal partial order.
    pub fn compare(&self, other: &Self) -> CausalOrder {
        let mut self_greater = false;
        let mut other_greater = false;
        for (&id, &c) in &self.entries {
            match c.cmp(&other.get(id)) {
                std::cmp::Ordering::Greater => self_greater = true,
                std::cmp::Ordering::Less => other_greater = true,
                std::cmp::Ordering::Equal => {}
            }
        }
        for (&id, &c) in &other.entries {
            if c > self.get(id) {
                other_greater = true;
            }
        }
        match (self_greater, other_greater) {
            (false, false) => CausalOrder::Equal,
            (true, false) => CausalOrder::Dominates,
            (false, true) => CausalOrder::DominatedBy,
            (true, true) => CausalOrder::Concurrent,
        }
    }

    /// `self` dominates `other`: at least equal in all entries, greater in at
    /// least one.
    pub fn dominates(&self, other: &Self) -> bool {
        self.compare(other) == CausalOrder::Dominates
    }

    /// `self` is equal to or dominates `other` — the `valid` predicate of
    /// Algorithm 2 ("valid returns true if k ≥ cache_version").
    pub fn at_least(&self, other: &Self) -> bool {
        matches!(
            self.compare(other),
            CausalOrder::Equal | CausalOrder::Dominates
        )
    }

    /// `self` and `other` are concurrent.
    pub fn concurrent_with(&self, other: &Self) -> bool {
        self.compare(other) == CausalOrder::Concurrent
    }

    /// Iterate over `⟨id, clock⟩` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &u64)> {
        self.entries.iter()
    }
}

impl Lattice for VectorClock {
    fn join(&mut self, other: Self) {
        for (id, clock) in other.entries {
            let e = self.entries.entry(id).or_insert(0);
            *e = (*e).max(clock);
        }
    }

    fn join_ref(&mut self, other: &Self) {
        for (&id, &clock) in &other.entries {
            let e = self.entries.entry(id).or_insert(0);
            *e = (*e).max(clock);
        }
    }
}

impl BottomLattice for VectorClock {}

impl FromIterator<(u64, u64)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut vc = Self::new();
        for (id, clock) in iter {
            let e = vc.entries.entry(id).or_insert(0);
            *e = (*e).max(clock);
        }
        vc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(entries: &[(u64, u64)]) -> VectorClock {
        entries.iter().copied().collect()
    }

    #[test]
    fn domination() {
        let a = vc(&[(1, 2), (2, 1)]);
        let b = vc(&[(1, 1), (2, 1)]);
        assert_eq!(a.compare(&b), CausalOrder::Dominates);
        assert_eq!(b.compare(&a), CausalOrder::DominatedBy);
        assert!(a.dominates(&b));
        assert!(a.at_least(&b));
        assert!(!b.at_least(&a));
    }

    #[test]
    fn concurrency() {
        let a = vc(&[(1, 2)]);
        let b = vc(&[(2, 2)]);
        assert_eq!(a.compare(&b), CausalOrder::Concurrent);
        assert!(a.concurrent_with(&b));
        assert!(!a.at_least(&b));
    }

    #[test]
    fn equality_and_missing_entries_are_zero() {
        let a = vc(&[(1, 0), (2, 3)]);
        let b = vc(&[(2, 3)]);
        assert_eq!(a.compare(&b), CausalOrder::Equal);
        assert!(a.at_least(&b));
        assert!(b.at_least(&a));
    }

    #[test]
    fn join_is_pairwise_max() {
        let mut a = vc(&[(1, 2), (2, 1)]);
        a.join(vc(&[(1, 1), (3, 4)]));
        assert_eq!(a, vc(&[(1, 2), (2, 1), (3, 4)]));
    }

    #[test]
    fn increment_grows_own_entry() {
        let mut a = VectorClock::new();
        assert_eq!(a.increment(5), 1);
        assert_eq!(a.increment(5), 2);
        assert_eq!(a.get(5), 2);
        assert_eq!(a.get(6), 0);
    }

    #[test]
    fn join_dominates_both_inputs() {
        let a = vc(&[(1, 5)]);
        let b = vc(&[(2, 3)]);
        let j = a.clone().joined(b.clone());
        assert!(j.at_least(&a));
        assert!(j.at_least(&b));
    }

    #[test]
    fn metadata_bytes_scales_with_writers() {
        assert_eq!(vc(&[]).metadata_bytes(), 0);
        assert_eq!(vc(&[(1, 1)]).metadata_bytes(), 16);
        assert_eq!(vc(&[(1, 1), (2, 1), (3, 1)]).metadata_bytes(), 48);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::btree_map;
    use proptest::prelude::*;

    fn clock() -> impl Strategy<Value = VectorClock> {
        btree_map(0u64..5, 0u64..5, 0..5).prop_map(|m| m.into_iter().collect())
    }

    proptest! {
        #[test]
        fn aci(a in clock(), b in clock(), c in clock()) {
            prop_assert_eq!(
                a.clone().joined(b.clone()).joined(c.clone()),
                a.clone().joined(b.clone().joined(c))
            );
            prop_assert_eq!(a.clone().joined(b.clone()), b.clone().joined(a.clone()));
            prop_assert_eq!(a.clone().joined(a.clone()), a);
        }

        #[test]
        fn compare_is_antisymmetric(a in clock(), b in clock()) {
            let ab = a.compare(&b);
            let ba = b.compare(&a);
            let expected = match ab {
                CausalOrder::Equal => CausalOrder::Equal,
                CausalOrder::Dominates => CausalOrder::DominatedBy,
                CausalOrder::DominatedBy => CausalOrder::Dominates,
                CausalOrder::Concurrent => CausalOrder::Concurrent,
            };
            prop_assert_eq!(ba, expected);
        }

        #[test]
        fn join_is_least_upper_bound(a in clock(), b in clock()) {
            let j = a.clone().joined(b.clone());
            prop_assert!(j.at_least(&a));
            prop_assert!(j.at_least(&b));
        }

        #[test]
        fn at_least_is_transitive(a in clock(), b in clock(), c in clock()) {
            if a.at_least(&b) && b.at_least(&c) {
                prop_assert!(a.at_least(&c));
            }
        }
    }
}

//! [`LwwLattice`]: the last-writer-wins lattice, Cloudburst's default capsule.

use bytes::Bytes;

use crate::timestamp::Timestamp;
use crate::traits::{BottomLattice, Lattice};

/// A last-writer-wins register: the composition of a global [`Timestamp`] and
/// an opaque value.
///
/// Per the paper (§5.2): "Anna merges two LWW versions by keeping the value
/// with the higher timestamp. This allows Cloudburst to achieve eventual
/// consistency: all replicas will agree on the LWW value that corresponds to
/// the highest timestamp for the key." The timestamp also drives the
/// repeatable-read protocol's version identity (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LwwLattice {
    /// Timestamp of the winning write.
    pub timestamp: Timestamp,
    /// The (opaque, serialized) user value.
    pub value: Bytes,
}

impl LwwLattice {
    /// Wrap a value with its write timestamp.
    pub fn new(timestamp: Timestamp, value: Bytes) -> Self {
        Self { timestamp, value }
    }

    /// The payload size in bytes (used by cache size accounting and the
    /// storage-tier simulator).
    pub fn payload_len(&self) -> usize {
        self.value.len()
    }
}

impl Lattice for LwwLattice {
    fn join(&mut self, other: Self) {
        // Strictly-greater comparison: on a timestamp tie the incumbent wins,
        // which is still deterministic because `TimestampGenerator` guarantees
        // node-unique timestamps (ties only arise re-merging the same write).
        if other.timestamp > self.timestamp {
            *self = other;
        }
    }

    fn join_ref(&mut self, other: &Self) {
        if other.timestamp > self.timestamp {
            self.timestamp = other.timestamp;
            self.value = other.value.clone();
        }
    }
}

impl BottomLattice for LwwLattice {}

#[cfg(test)]
mod tests {
    use super::*;

    fn lww(clock: u64, node: u64, v: &'static [u8]) -> LwwLattice {
        LwwLattice::new(Timestamp::new(clock, node), Bytes::from_static(v))
    }

    #[test]
    fn later_write_wins() {
        let mut a = lww(1, 0, b"old");
        a.join(lww(2, 0, b"new"));
        assert_eq!(&a.value[..], b"new");
    }

    #[test]
    fn earlier_write_loses() {
        let mut a = lww(5, 0, b"current");
        a.join(lww(2, 0, b"stale"));
        assert_eq!(&a.value[..], b"current");
        assert_eq!(a.timestamp, Timestamp::new(5, 0));
    }

    #[test]
    fn node_id_breaks_clock_ties() {
        let mut a = lww(3, 1, b"node1");
        a.join(lww(3, 2, b"node2"));
        assert_eq!(&a.value[..], b"node2");
    }

    #[test]
    fn merge_is_order_insensitive() {
        let writes = [lww(3, 1, b"a"), lww(1, 2, b"b"), lww(3, 2, b"c")];
        let mut fwd = LwwLattice::bottom();
        let mut rev = LwwLattice::bottom();
        for w in &writes {
            fwd.join_ref(w);
        }
        for w in writes.iter().rev() {
            rev.join_ref(w);
        }
        assert_eq!(fwd, rev);
        assert_eq!(&fwd.value[..], b"c");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn lww_strategy() -> impl Strategy<Value = LwwLattice> {
        (
            any::<u32>(),
            0u64..4,
            proptest::collection::vec(any::<u8>(), 0..8),
        )
            .prop_map(|(clock, node, v)| {
                LwwLattice::new(Timestamp::new(u64::from(clock), node), v.into())
            })
    }

    proptest! {
        #[test]
        fn aci(a in lww_strategy(), b in lww_strategy(), c in lww_strategy()) {
            prop_assert_eq!(
                a.clone().joined(b.clone()).joined(c.clone()),
                a.clone().joined(b.clone().joined(c))
            );
            // Commutativity holds whenever timestamps differ; equal timestamps
            // denote the same logical write in this system, so restrict.
            if a.timestamp != b.timestamp {
                prop_assert_eq!(a.clone().joined(b.clone()), b.joined(a.clone()));
            }
            prop_assert_eq!(a.clone().joined(a.clone()), a);
        }

        #[test]
        fn join_keeps_max_timestamp(a in lww_strategy(), b in lww_strategy()) {
            let j = a.clone().joined(b.clone());
            prop_assert_eq!(j.timestamp, a.timestamp.max(b.timestamp));
        }
    }
}

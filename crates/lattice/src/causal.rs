//! [`CausalLattice`]: the multi-value causal lattice used in causal modes.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;

use crate::key::Key;
use crate::traits::{BottomLattice, Lattice};
use crate::vector_clock::{CausalOrder, VectorClock};

/// One causally-tagged version of a key: "the composition of an Anna-provided
/// vector clock that identifies `k`'s version, a dependency set that tracks
/// key versions that `k` depends on, and the value" (paper §5.2).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CausalVersion {
    /// Version identity.
    pub vector_clock: VectorClock,
    /// Key versions this version causally depends on.
    pub dependencies: BTreeMap<Key, VectorClock>,
    /// The opaque user value.
    pub value: Bytes,
}

/// The causal lattice of paper §5.2, implemented as a *multi-version
/// antichain*: the set of versions none of which causally dominates another.
///
/// The paper describes the two-version merge: if one vector clock dominates,
/// keep that lattice; if they are concurrent, keep both (pair-wise max clock,
/// set-union of dependency sets and values). We implement the standard
/// antichain completion of that rule — union the version sets and prune
/// strictly-dominated versions — which is provably associative, commutative,
/// and idempotent, and collapses to exactly the paper's behaviour for the
/// two-version case. The *effective* clock observed by the consistency
/// protocol ([`CausalLattice::vector_clock`]) is the join of all retained
/// versions' clocks, matching the paper's merged clock.
///
/// De-encapsulation presents the user with one version chosen by an arbitrary
/// but deterministic tie-break ([`CausalLattice::read_value`]); the cache
/// layer retains the concurrent versions for the consistency protocol, and
/// applications can retrieve them all to resolve conflicts manually.
///
/// The version vector lives behind an [`Arc`], so cloning a `CausalLattice`
/// (and therefore a causal-kind `Capsule`) is one refcount bump regardless
/// of how many versions or dependencies it holds; a `join` copies the vector
/// only when this lattice is actually shared (copy-on-divergence via
/// [`Arc::make_mut`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CausalLattice {
    /// Retained versions, sorted, mutually concurrent (an antichain).
    versions: Arc<Vec<CausalVersion>>,
}

impl CausalLattice {
    /// A single-version causal value.
    pub fn new(
        vector_clock: VectorClock,
        dependencies: impl IntoIterator<Item = (Key, VectorClock)>,
        value: Bytes,
    ) -> Self {
        Self {
            versions: Arc::new(vec![CausalVersion {
                vector_clock,
                dependencies: dependencies.into_iter().collect(),
                value,
            }]),
        }
    }

    /// The effective version clock: the join of all retained versions'
    /// clocks. This is what Algorithm 2's `valid` predicate compares.
    pub fn vector_clock(&self) -> VectorClock {
        let mut vc = VectorClock::new();
        for v in self.versions.iter() {
            vc.join_ref(&v.vector_clock);
        }
        vc
    }

    /// The union of the dependency sets of all retained versions; per-key
    /// clocks are joined.
    pub fn dependencies(&self) -> BTreeMap<Key, VectorClock> {
        let mut deps: BTreeMap<Key, VectorClock> = BTreeMap::new();
        for v in self.versions.iter() {
            for (k, vc) in &v.dependencies {
                deps.entry(k.clone()).or_default().join_ref(vc);
            }
        }
        deps
    }

    /// De-encapsulate: present the user program with one version chosen via
    /// an arbitrary but deterministic tie-breaking scheme (paper §5.2). We
    /// pick the version with the smallest `(clock, deps, value)` tuple.
    pub fn read_value(&self) -> Option<&Bytes> {
        self.versions.first().map(|v| &v.value)
    }

    /// All retained concurrent versions, for applications that resolve
    /// conflicts manually.
    pub fn versions(&self) -> &[CausalVersion] {
        &self.versions
    }

    /// All concurrent values.
    pub fn concurrent_values(&self) -> impl Iterator<Item = &Bytes> {
        self.versions.iter().map(|v| &v.value)
    }

    /// Whether this lattice currently holds more than one concurrent version.
    pub fn has_conflicts(&self) -> bool {
        self.versions.len() > 1
    }

    /// Approximate causal metadata size in bytes (vector clocks plus
    /// dependency sets), matching the §6.2.1 overhead measurements.
    pub fn metadata_bytes(&self) -> usize {
        self.versions
            .iter()
            .map(|v| {
                v.vector_clock.metadata_bytes()
                    + v.dependencies
                        .iter()
                        .map(|(k, vc)| k.as_str().len() + vc.metadata_bytes())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Total payload size across all held versions.
    pub fn payload_len(&self) -> usize {
        self.versions.iter().map(|v| v.value.len()).sum()
    }

    /// Restore the antichain invariant: drop versions whose clock is strictly
    /// dominated by another retained version's clock, dedupe, and sort.
    fn normalize(versions: &mut Vec<CausalVersion>) {
        versions.sort_unstable();
        versions.dedup();
        let clocks: Vec<VectorClock> = versions.iter().map(|v| v.vector_clock.clone()).collect();
        let mut keep = vec![true; versions.len()];
        for (i, vi) in clocks.iter().enumerate() {
            for (j, vj) in clocks.iter().enumerate() {
                if i != j && vj.compare(vi) == CausalOrder::Dominates {
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut it = keep.iter();
        versions.retain(|_| *it.next().expect("keep mask matches versions"));
    }
}

impl Lattice for CausalLattice {
    fn join(&mut self, other: Self) {
        // Re-merging an identical shared lattice (redelivery, snapshot
        // handle) or a bottom element is idempotent — skip it without
        // copying the shared version vector.
        if Arc::ptr_eq(&self.versions, &other.versions) || other.versions.is_empty() {
            return;
        }
        if self.versions.is_empty() {
            self.versions = other.versions;
            return;
        }
        let versions = Arc::make_mut(&mut self.versions);
        match Arc::try_unwrap(other.versions) {
            Ok(owned) => versions.extend(owned),
            Err(shared) => versions.extend(shared.iter().cloned()),
        }
        Self::normalize(versions);
    }
}

impl BottomLattice for CausalLattice {}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(entries: &[(u64, u64)]) -> VectorClock {
        entries.iter().copied().collect()
    }

    fn causal(clock: &[(u64, u64)], value: &'static [u8]) -> CausalLattice {
        CausalLattice::new(vc(clock), [], Bytes::from_static(value))
    }

    #[test]
    fn dominant_version_wins() {
        let mut a = causal(&[(1, 1)], b"old");
        a.join(causal(&[(1, 2)], b"new"));
        assert_eq!(a.read_value().unwrap().as_ref(), b"new");
        assert!(!a.has_conflicts());
    }

    #[test]
    fn dominated_version_is_ignored() {
        let mut a = causal(&[(1, 2)], b"current");
        a.join(causal(&[(1, 1)], b"stale"));
        assert_eq!(a.read_value().unwrap().as_ref(), b"current");
        assert!(!a.has_conflicts());
    }

    #[test]
    fn concurrent_versions_are_both_kept() {
        let mut a = causal(&[(1, 1)], b"from-node-1");
        a.join(causal(&[(2, 1)], b"from-node-2"));
        assert!(a.has_conflicts());
        assert_eq!(a.vector_clock(), vc(&[(1, 1), (2, 1)]));
        assert_eq!(a.concurrent_values().count(), 2);
    }

    #[test]
    fn later_write_prunes_all_concurrent_predecessors() {
        let mut a = causal(&[(1, 1)], b"a");
        a.join(causal(&[(2, 1)], b"b"));
        // A writer that read the merged state writes with the joined+bumped clock.
        a.join(causal(&[(1, 2), (2, 1)], b"resolved"));
        assert!(!a.has_conflicts());
        assert_eq!(a.read_value().unwrap().as_ref(), b"resolved");
    }

    #[test]
    fn concurrent_merge_unions_dependencies() {
        let mut a = CausalLattice::new(
            vc(&[(1, 1)]),
            [(Key::new("x"), vc(&[(9, 1)]))],
            Bytes::from_static(b"a"),
        );
        let b = CausalLattice::new(
            vc(&[(2, 1)]),
            [(Key::new("y"), vc(&[(8, 2)]))],
            Bytes::from_static(b"b"),
        );
        a.join(b);
        let deps = a.dependencies();
        assert_eq!(deps.len(), 2);
        assert_eq!(deps.get(&Key::new("x")).unwrap(), &vc(&[(9, 1)]));
        assert_eq!(deps.get(&Key::new("y")).unwrap(), &vc(&[(8, 2)]));
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut one = causal(&[(1, 1)], b"zzz");
        one.join(causal(&[(2, 1)], b"aaa"));
        let mut two = causal(&[(2, 1)], b"aaa");
        two.join(causal(&[(1, 1)], b"zzz"));
        assert_eq!(one.read_value(), two.read_value());
        assert_eq!(one, two);
    }

    #[test]
    fn clone_shares_versions_and_diverges_on_join() {
        let a = causal(&[(1, 1)], b"x");
        let mut b = a.clone();
        assert!(
            Arc::ptr_eq(&a.versions, &b.versions),
            "clone must be a refcount bump"
        );
        // Re-joining the shared handle is a no-op that preserves sharing.
        b.join(a.clone());
        assert!(Arc::ptr_eq(&a.versions, &b.versions));
        // Joining new state diverges without disturbing the original.
        b.join(causal(&[(2, 1)], b"y"));
        assert!(!Arc::ptr_eq(&a.versions, &b.versions));
        assert_eq!(a.versions().len(), 1);
        assert_eq!(b.versions().len(), 2);
    }

    #[test]
    fn redelivery_is_idempotent() {
        let mut a = causal(&[(1, 1)], b"v");
        let copy = a.clone();
        a.join(copy.clone());
        a.join(copy);
        assert_eq!(a, causal(&[(1, 1)], b"v"));
    }

    #[test]
    fn stale_value_does_not_resurface_regardless_of_order() {
        // Regression for the classic non-associativity bug of collapsed
        // multi-value merges: a=(1:1,"x"), b=(2:1,"y"), c=(1:2,"z").
        let a = causal(&[(1, 1)], b"x");
        let b = causal(&[(2, 1)], b"y");
        let c = causal(&[(1, 2)], b"z");
        let left = a.clone().joined(b.clone()).joined(c.clone());
        let right = a.joined(b.joined(c));
        assert_eq!(left, right);
        // "x" is dominated by "z" and must be pruned in both orders.
        assert!(left.concurrent_values().all(|v| v.as_ref() != b"x"));
        assert_eq!(left.concurrent_values().count(), 2);
    }

    #[test]
    fn metadata_bytes_counts_deps() {
        let c = CausalLattice::new(
            vc(&[(1, 1)]),
            [(Key::new("xy"), vc(&[(2, 1), (3, 1)]))],
            Bytes::new(),
        );
        // 16 (own vc) + 2 (key "xy") + 32 (dep vc with 2 entries)
        assert_eq!(c.metadata_bytes(), 50);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::btree_map;
    use proptest::prelude::*;

    fn causal_strategy() -> impl Strategy<Value = CausalLattice> {
        (
            btree_map(0u64..4, 1u64..4, 1..4),
            proptest::collection::vec(any::<u8>(), 1..4),
            btree_map(0u64..3, 1u64..3, 0..3),
        )
            .prop_map(|(clock, value, dep_clock)| {
                let deps: Vec<(Key, VectorClock)> = if dep_clock.is_empty() {
                    vec![]
                } else {
                    vec![(Key::new("dep"), dep_clock.into_iter().collect())]
                };
                CausalLattice::new(clock.into_iter().collect(), deps, value.into())
            })
    }

    proptest! {
        #[test]
        fn associative(a in causal_strategy(), b in causal_strategy(), c in causal_strategy()) {
            prop_assert_eq!(
                a.clone().joined(b.clone()).joined(c.clone()),
                a.clone().joined(b.clone().joined(c))
            );
        }

        #[test]
        fn commutative(a in causal_strategy(), b in causal_strategy()) {
            prop_assert_eq!(a.clone().joined(b.clone()), b.joined(a));
        }

        #[test]
        fn idempotent(a in causal_strategy()) {
            prop_assert_eq!(a.clone().joined(a.clone()), a);
        }

        #[test]
        fn retained_versions_form_an_antichain(a in causal_strategy(), b in causal_strategy()) {
            let j = a.joined(b);
            for (i, x) in j.versions().iter().enumerate() {
                for (k, y) in j.versions().iter().enumerate() {
                    if i != k {
                        prop_assert!(
                            !x.vector_clock.dominates(&y.vector_clock),
                            "antichain violated"
                        );
                    }
                }
            }
        }

        #[test]
        fn effective_clock_dominates_inputs(a in causal_strategy(), b in causal_strategy()) {
            let j = a.clone().joined(b.clone());
            prop_assert!(j.vector_clock().at_least(&a.vector_clock()));
            prop_assert!(j.vector_clock().at_least(&b.vector_clock()));
        }
    }
}

//! The core [`Lattice`] trait and its laws.

/// A join semilattice: a type with a binary `join` operator that is
/// **associative**, **commutative**, and **idempotent** (ACI).
///
/// Anna's coordination-free consistency rests entirely on these laws: because
/// `join` is insensitive to batching, ordering, and repetition, replicas can
/// apply concurrent updates in any order and still converge.
///
/// # Laws
///
/// For all `a`, `b`, `c`:
///
/// * `join(join(a, b), c) == join(a, join(b, c))` (associativity)
/// * `join(a, b) == join(b, a)` (commutativity)
/// * `join(a, a) == a` (idempotence)
///
/// These laws are checked by property tests in every implementing module.
pub trait Lattice: Clone + PartialEq {
    /// Merge `other` into `self`, leaving `self` as the least upper bound of
    /// the two values.
    fn join(&mut self, other: Self);

    /// Consuming variant of [`Lattice::join`], convenient for folds.
    #[must_use]
    fn joined(mut self, other: Self) -> Self {
        self.join(other);
        self
    }

    /// Merge a borrowed `other` into `self`. The default implementation
    /// clones; implementations may override to avoid the copy.
    fn join_ref(&mut self, other: &Self) {
        self.join(other.clone());
    }
}

/// A lattice with a bottom element `⊥` such that `join(⊥, a) == a`.
///
/// `bottom` is the identity of `join`, which lets callers fold arbitrary
/// collections of lattice values without special-casing emptiness.
pub trait BottomLattice: Lattice + Default {
    /// The bottom element (identity of `join`).
    #[must_use]
    fn bottom() -> Self {
        Self::default()
    }

    /// Whether this value is the bottom element.
    fn is_bottom(&self) -> bool {
        *self == Self::bottom()
    }
}

/// Fold an iterator of lattice values into their least upper bound, starting
/// from bottom.
pub fn join_all<L, I>(values: I) -> L
where
    L: BottomLattice,
    I: IntoIterator<Item = L>,
{
    values.into_iter().fold(L::bottom(), L::joined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max::MaxLattice;

    #[test]
    fn join_all_empty_is_bottom() {
        let l: MaxLattice<u32> = join_all(std::iter::empty());
        assert!(l.is_bottom());
    }

    #[test]
    fn join_all_folds() {
        let l: MaxLattice<u32> = join_all([1, 9, 4].map(MaxLattice::new));
        assert_eq!(l.get(), &9);
    }

    #[test]
    fn joined_is_join() {
        let a = MaxLattice::new(3);
        let b = MaxLattice::new(7);
        let mut c = a;
        c.join(b);
        assert_eq!(a.joined(b), c);
    }
}

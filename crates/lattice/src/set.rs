//! [`SetLattice`]: grow-only sets under union.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::traits::{BottomLattice, Lattice};

/// A grow-only set lattice where `join` is set union and bottom is `∅`.
///
/// Anna uses set lattices for, among other things, the set of registered
/// functions, cached-keyset reports from Cloudburst caches, and the value
/// component of the multi-value causal lattice.
///
/// The element set lives behind an [`Arc`], so cloning a `SetLattice` (and
/// therefore a set-kind `Capsule`) is one refcount bump regardless of size;
/// mutation copies the set only when it is actually shared
/// (copy-on-divergence via [`Arc::make_mut`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetLattice<T: Ord>(Arc<BTreeSet<T>>);

impl<T: Ord> Default for SetLattice<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> SetLattice<T> {
    /// An empty set.
    pub fn new() -> Self {
        Self(Arc::new(BTreeSet::new()))
    }

    /// A singleton set.
    pub fn singleton(value: T) -> Self {
        let mut s = BTreeSet::new();
        s.insert(value);
        Self(Arc::new(s))
    }

    /// Whether the set contains `value`.
    pub fn contains(&self, value: &T) -> bool {
        self.0.contains(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over elements in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.0.iter()
    }

    /// The smallest element, if any. Used for deterministic tie-breaking when
    /// de-encapsulating multi-valued causal capsules (paper §5.2).
    pub fn first(&self) -> Option<&T> {
        self.0.first()
    }

    /// Access the underlying sorted set.
    pub fn as_set(&self) -> &BTreeSet<T> {
        &self.0
    }
}

impl<T: Ord + Clone> SetLattice<T> {
    /// Insert an element (a join with the singleton set).
    pub fn insert(&mut self, value: T) -> bool {
        Arc::make_mut(&mut self.0).insert(value)
    }

    /// Consume into the underlying sorted set (copies only if shared).
    pub fn into_set(self) -> BTreeSet<T> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| (*shared).clone())
    }
}

impl<T: Ord + Clone> Lattice for SetLattice<T> {
    fn join(&mut self, other: Self) {
        // Re-merging the same shared set (redelivery, snapshot handle) is
        // idempotent — skip it without breaking the sharing.
        if Arc::ptr_eq(&self.0, &other.0) || other.0.is_empty() {
            return;
        }
        if self.0.is_empty() {
            self.0 = other.0;
            return;
        }
        match Arc::try_unwrap(other.0) {
            Ok(mut owned) => {
                // Move only the genuinely new elements; a subset merge must
                // not deep-copy a shared set just to add nothing.
                owned.retain(|v| !self.0.contains(v));
                if !owned.is_empty() {
                    Arc::make_mut(&mut self.0).extend(owned);
                }
            }
            Err(shared) => self.join_ref(&Self(shared)),
        }
    }

    fn join_ref(&mut self, other: &Self) {
        if Arc::ptr_eq(&self.0, &other.0) || other.0.is_empty() {
            return;
        }
        if self.0.is_empty() {
            self.0 = Arc::clone(&other.0);
            return;
        }
        let missing: Vec<&T> = other.0.iter().filter(|v| !self.0.contains(*v)).collect();
        if !missing.is_empty() {
            Arc::make_mut(&mut self.0).extend(missing.into_iter().cloned());
        }
    }
}

impl<T: Ord + Clone> BottomLattice for SetLattice<T> {}

impl<T: Ord> FromIterator<T> for SetLattice<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self(Arc::new(iter.into_iter().collect()))
    }
}

impl<T: Ord + Clone> IntoIterator for SetLattice<T> {
    type Item = T;
    type IntoIter = std::collections::btree_set::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_set().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_semantics() {
        let mut a: SetLattice<u32> = [1, 2].into_iter().collect();
        let b: SetLattice<u32> = [2, 3].into_iter().collect();
        a.join(b);
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn bottom_is_empty() {
        assert!(SetLattice::<u32>::bottom().is_empty());
    }

    #[test]
    fn first_is_deterministic_tiebreak() {
        let s: SetLattice<&str> = ["zebra", "apple"].into_iter().collect();
        assert_eq!(s.first(), Some(&"apple"));
    }

    #[test]
    fn join_ref_matches_join() {
        let a: SetLattice<u32> = [1, 5].into_iter().collect();
        let b: SetLattice<u32> = [5, 9].into_iter().collect();
        let mut via_ref = a.clone();
        via_ref.join_ref(&b);
        assert_eq!(via_ref, a.joined(b));
    }

    #[test]
    fn clone_shares_storage_and_diverges_on_write() {
        let a: SetLattice<u32> = [1, 2, 3].into_iter().collect();
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0), "clone must be a refcount bump");
        b.insert(4);
        assert!(!Arc::ptr_eq(&a.0, &b.0), "mutation must copy-on-divergence");
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn join_ref_of_subset_does_not_copy() {
        let mut a: SetLattice<u32> = [1, 2, 3].into_iter().collect();
        let snapshot = a.clone();
        let subset: SetLattice<u32> = [2, 3].into_iter().collect();
        a.join_ref(&subset);
        assert!(
            Arc::ptr_eq(&a.0, &snapshot.0),
            "joining a subset must not break sharing"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::btree_set;
    use proptest::prelude::*;

    fn set_lat() -> impl Strategy<Value = SetLattice<u8>> {
        btree_set(any::<u8>(), 0..8).prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        #[test]
        fn aci(a in set_lat(), b in set_lat(), c in set_lat()) {
            prop_assert_eq!(
                a.clone().joined(b.clone()).joined(c.clone()),
                a.clone().joined(b.clone().joined(c))
            );
            prop_assert_eq!(a.clone().joined(b.clone()), b.joined(a.clone()));
            prop_assert_eq!(a.clone().joined(a.clone()), a);
        }

        #[test]
        fn join_is_upper_bound(a in set_lat(), b in set_lat()) {
            let j = a.clone().joined(b.clone());
            for v in a.iter().chain(b.iter()) {
                prop_assert!(j.contains(v));
            }
        }
    }
}

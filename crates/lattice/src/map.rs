//! [`MapLattice`]: maps whose values are themselves lattices, merged
//! point-wise.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use crate::traits::{BottomLattice, Lattice};

/// A map lattice: keys are merged by union, values point-wise via the value
/// lattice's own `join`.
///
/// This is Anna's workhorse composition ("Anna uses lattice composition to
/// implement consistency", paper §2.2): e.g. the key→cache index is a
/// `MapLattice<Key, SetLattice<CacheAddress>>`, and executor metric tables
/// are `MapLattice<ExecutorId, MaxLattice<…>>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapLattice<K: Ord, V: Lattice>(BTreeMap<K, V>);

impl<K: Ord, V: Lattice> Default for MapLattice<K, V> {
    fn default() -> Self {
        Self(BTreeMap::new())
    }
}

impl<K: Ord, V: Lattice> MapLattice<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self(BTreeMap::new())
    }

    /// Merge `value` into the entry for `key` (inserting it if absent).
    pub fn insert_join(&mut self, key: K, value: V) {
        match self.0.entry(key) {
            Entry::Vacant(e) => {
                e.insert(value);
            }
            Entry::Occupied(mut e) => e.get_mut().join(value),
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.0.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.0.iter()
    }

    /// Access the underlying map.
    pub fn as_map(&self) -> &BTreeMap<K, V> {
        &self.0
    }

    /// Consume into the underlying map.
    pub fn into_map(self) -> BTreeMap<K, V> {
        self.0
    }
}

impl<K: Ord + Clone, V: Lattice> Lattice for MapLattice<K, V> {
    fn join(&mut self, other: Self) {
        for (k, v) in other.0 {
            self.insert_join(k, v);
        }
    }

    fn join_ref(&mut self, other: &Self) {
        for (k, v) in &other.0 {
            match self.0.entry(k.clone()) {
                Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
                Entry::Occupied(mut e) => e.get_mut().join_ref(v),
            }
        }
    }
}

impl<K: Ord + Clone, V: Lattice> BottomLattice for MapLattice<K, V> {}

impl<K: Ord, V: Lattice> FromIterator<(K, V)> for MapLattice<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        // insert_join (not plain insert) so duplicate keys in the input merge
        // instead of last-one-wins.
        let mut m = Self::new();
        for (k, v) in iter {
            m.insert_join(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max::MaxLattice;
    use crate::set::SetLattice;

    #[test]
    fn pointwise_merge() {
        let mut a: MapLattice<&str, MaxLattice<u32>> =
            [("x", 1.into()), ("y", 5.into())].into_iter().collect();
        let b: MapLattice<&str, MaxLattice<u32>> =
            [("x", 3.into()), ("z", 2.into())].into_iter().collect();
        a.join(b);
        assert_eq!(a.get(&"x").unwrap().get(), &3);
        assert_eq!(a.get(&"y").unwrap().get(), &5);
        assert_eq!(a.get(&"z").unwrap().get(), &2);
    }

    #[test]
    fn from_iter_merges_duplicates() {
        let m: MapLattice<&str, MaxLattice<u32>> =
            [("x", 1.into()), ("x", 9.into()), ("x", 4.into())]
                .into_iter()
                .collect();
        assert_eq!(m.get(&"x").unwrap().get(), &9);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn nested_composition() {
        // A key→cache-set index, as used by Anna's update propagation.
        let mut idx: MapLattice<&str, SetLattice<u16>> = MapLattice::new();
        idx.insert_join("k1", SetLattice::singleton(1));
        idx.insert_join("k1", SetLattice::singleton(2));
        idx.insert_join("k2", SetLattice::singleton(1));
        assert_eq!(idx.get(&"k1").unwrap().len(), 2);
        assert_eq!(idx.get(&"k2").unwrap().len(), 1);
    }

    #[test]
    fn join_ref_matches_join() {
        let a: MapLattice<u8, MaxLattice<u8>> =
            [(1, 2.into()), (2, 3.into())].into_iter().collect();
        let b: MapLattice<u8, MaxLattice<u8>> =
            [(1, 9.into()), (3, 1.into())].into_iter().collect();
        let mut via_ref = a.clone();
        via_ref.join_ref(&b);
        assert_eq!(via_ref, a.joined(b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::max::MaxLattice;
    use proptest::collection::btree_map;
    use proptest::prelude::*;

    fn map_lat() -> impl Strategy<Value = MapLattice<u8, MaxLattice<u8>>> {
        btree_map(any::<u8>(), any::<u8>(), 0..8).prop_map(|m| {
            m.into_iter()
                .map(|(k, v)| (k, MaxLattice::new(v)))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn aci(a in map_lat(), b in map_lat(), c in map_lat()) {
            prop_assert_eq!(
                a.clone().joined(b.clone()).joined(c.clone()),
                a.clone().joined(b.clone().joined(c))
            );
            prop_assert_eq!(a.clone().joined(b.clone()), b.joined(a.clone()));
            prop_assert_eq!(a.clone().joined(a.clone()), a);
        }

        #[test]
        fn join_dominates_pointwise(a in map_lat(), b in map_lat()) {
            let j = a.clone().joined(b.clone());
            for (k, v) in a.iter().chain(b.iter()) {
                prop_assert!(j.get(k).unwrap().get() >= v.get());
            }
        }
    }
}

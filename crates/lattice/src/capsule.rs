//! [`Capsule`]: lattice encapsulation of opaque program state.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;

use crate::causal::CausalLattice;
use crate::key::Key;
use crate::lww::LwwLattice;
use crate::set::SetLattice;
use crate::timestamp::Timestamp;
use crate::traits::{BottomLattice, Lattice};
use crate::vector_clock::VectorClock;

/// Which lattice a value is encapsulated in — one per Cloudburst consistency
/// family (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyKind {
    /// Default mode: last-writer-wins lattice (eventual consistency,
    /// timestamps feed the repeatable-read protocol).
    Lww,
    /// Causal modes: vector clock + dependency set + value.
    Causal,
    /// Grow-only set of opaque values (union on merge). Used for system
    /// state with append semantics, e.g. executor message inboxes (§3) and
    /// registered-function lists (§4.3).
    Set,
}

/// Errors from capsule operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapsuleError {
    /// Attempted to merge or interpret a capsule under the wrong kind.
    KindMismatch {
        /// Kind of the existing capsule.
        existing: ConsistencyKind,
        /// Kind of the incoming capsule.
        incoming: ConsistencyKind,
    },
}

impl fmt::Display for CapsuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::KindMismatch { existing, incoming } => write!(
                f,
                "capsule kind mismatch: existing {existing:?}, incoming {incoming:?}"
            ),
        }
    }
}

impl std::error::Error for CapsuleError {}

/// A *lattice capsule*: opaque user program state transparently wrapped in a
/// lattice chosen to support Cloudburst's consistency protocols, so that
/// "users gain the benefits of Anna's conflict resolution and Cloudburst's
/// distributed session consistency without having to modify their programs"
/// (paper §2.2, §5.2).
///
/// `Capsule::clone` is **O(1)** for every kind: payload bytes live behind
/// [`Bytes`], and the causal/set variants keep their version and element
/// collections behind `Arc`s. A clone is therefore a *handle* to the same
/// state — stores and caches hand capsules across threads and into
/// per-session snapshot maps by cloning, and a later merge into one handle
/// copies the underlying data only at that point (copy-on-divergence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capsule {
    /// Default last-writer-wins encapsulation.
    Lww(LwwLattice),
    /// Causal-mode encapsulation.
    Causal(CausalLattice),
    /// Grow-only set encapsulation.
    Set(SetLattice<Bytes>),
}

impl Capsule {
    /// Encapsulate a bare value in an LWW lattice (default mode).
    pub fn wrap_lww(timestamp: Timestamp, value: Bytes) -> Self {
        Self::Lww(LwwLattice::new(timestamp, value))
    }

    /// Encapsulate a bare value in a causal lattice.
    pub fn wrap_causal(
        vector_clock: VectorClock,
        dependencies: impl IntoIterator<Item = (Key, VectorClock)>,
        value: Bytes,
    ) -> Self {
        Self::Causal(CausalLattice::new(vector_clock, dependencies, value))
    }

    /// Encapsulate a single element as a grow-only set.
    pub fn wrap_set_element(value: Bytes) -> Self {
        Self::Set(SetLattice::singleton(value))
    }

    /// The kind of lattice inside.
    pub fn kind(&self) -> ConsistencyKind {
        match self {
            Self::Lww(_) => ConsistencyKind::Lww,
            Self::Causal(_) => ConsistencyKind::Causal,
            Self::Set(_) => ConsistencyKind::Set,
        }
    }

    /// De-encapsulate: the value a user program observes. For multi-version
    /// causal capsules this applies the deterministic tie-break; for set
    /// capsules it is the smallest element.
    pub fn read_value(&self) -> Bytes {
        match self {
            Self::Lww(l) => l.value.clone(),
            Self::Causal(c) => c.read_value().cloned().unwrap_or_default(),
            Self::Set(s) => s.first().cloned().unwrap_or_default(),
        }
    }

    /// The elements of a set capsule (empty for other kinds).
    pub fn set_values(&self) -> Vec<Bytes> {
        match self {
            Self::Set(s) => s.iter().cloned().collect(),
            _ => Vec::new(),
        }
    }

    /// The LWW timestamp, if this is an LWW capsule. Used as the version
    /// identity in the repeatable-read protocol (Algorithm 1).
    pub fn lww_timestamp(&self) -> Option<Timestamp> {
        match self {
            Self::Lww(l) => Some(l.timestamp),
            _ => None,
        }
    }

    /// The effective vector clock, if this is a causal capsule. Used by
    /// Algorithm 2's `valid` predicate.
    pub fn causal_clock(&self) -> Option<VectorClock> {
        match self {
            Self::Causal(c) => Some(c.vector_clock()),
            _ => None,
        }
    }

    /// The causal dependency set (empty for LWW capsules).
    pub fn causal_dependencies(&self) -> BTreeMap<Key, VectorClock> {
        match self {
            Self::Causal(c) => c.dependencies(),
            _ => BTreeMap::new(),
        }
    }

    /// Total user payload bytes held (all versions for causal capsules).
    pub fn payload_len(&self) -> usize {
        match self {
            Self::Lww(l) => l.payload_len(),
            Self::Causal(c) => c.payload_len(),
            Self::Set(s) => s.iter().map(Bytes::len).sum(),
        }
    }

    /// Consistency metadata bytes (timestamp for LWW; vector clocks plus
    /// dependency sets for causal), per the §6.2.1 overhead measurements.
    pub fn metadata_bytes(&self) -> usize {
        match self {
            // "Last-writer wins … only stores the 8-byte timestamp" — we
            // count the full ⟨clock, node⟩ pair it is composed from.
            Self::Lww(_) => 8,
            Self::Causal(c) => c.metadata_bytes(),
            Self::Set(_) => 0,
        }
    }

    /// Merge another capsule of the *same kind* into this one.
    ///
    /// Anna never mixes kinds for one key (the mode is fixed per deployment),
    /// so a mismatch indicates a bug at the call site and is surfaced as an
    /// error rather than resolved silently.
    pub fn try_join(&mut self, other: Self) -> Result<(), CapsuleError> {
        match (self, other) {
            (Self::Lww(a), Self::Lww(b)) => {
                a.join(b);
                Ok(())
            }
            (Self::Causal(a), Self::Causal(b)) => {
                a.join(b);
                Ok(())
            }
            (Self::Set(a), Self::Set(b)) => {
                a.join(b);
                Ok(())
            }
            (existing, incoming) => Err(CapsuleError::KindMismatch {
                existing: existing.kind(),
                incoming: incoming.kind(),
            }),
        }
    }
}

impl Default for Capsule {
    fn default() -> Self {
        Self::Lww(LwwLattice::bottom())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lww(clock: u64, v: &'static [u8]) -> Capsule {
        Capsule::wrap_lww(Timestamp::new(clock, 0), Bytes::from_static(v))
    }

    fn causal(entries: &[(u64, u64)], v: &'static [u8]) -> Capsule {
        Capsule::wrap_causal(entries.iter().copied().collect(), [], Bytes::from_static(v))
    }

    #[test]
    fn lww_join_and_read() {
        let mut a = lww(1, b"old");
        a.try_join(lww(2, b"new")).unwrap();
        assert_eq!(a.read_value().as_ref(), b"new");
        assert_eq!(a.lww_timestamp(), Some(Timestamp::new(2, 0)));
        assert_eq!(a.kind(), ConsistencyKind::Lww);
    }

    #[test]
    fn causal_join_and_read() {
        let mut a = causal(&[(1, 1)], b"x");
        a.try_join(causal(&[(2, 1)], b"y")).unwrap();
        assert_eq!(a.causal_clock().unwrap().len(), 2);
        assert!(a.lww_timestamp().is_none());
        assert_eq!(a.kind(), ConsistencyKind::Causal);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let mut a = lww(1, b"x");
        let err = a.try_join(causal(&[(1, 1)], b"y")).unwrap_err();
        assert_eq!(
            err,
            CapsuleError::KindMismatch {
                existing: ConsistencyKind::Lww,
                incoming: ConsistencyKind::Causal,
            }
        );
        // The error is also printable.
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn metadata_accounting() {
        assert_eq!(lww(1, b"abc").metadata_bytes(), 8);
        assert_eq!(lww(1, b"abc").payload_len(), 3);
        let c = causal(&[(1, 1)], b"abcd");
        assert_eq!(c.metadata_bytes(), 16);
        assert_eq!(c.payload_len(), 4);
    }

    #[test]
    fn clone_is_a_payload_handle_for_every_kind() {
        // The payload allocation must be shared by a clone, not copied:
        // compare the address of the bytes each clone reads.
        let capsules = [
            Capsule::wrap_lww(Timestamp::new(1, 0), Bytes::from(vec![7u8; 64])),
            Capsule::wrap_causal(
                VectorClock::singleton(1, 1),
                [(Key::new("dep"), VectorClock::singleton(1, 1))],
                Bytes::from(vec![8u8; 64]),
            ),
            Capsule::wrap_set_element(Bytes::from(vec![9u8; 64])),
        ];
        for capsule in capsules {
            let clone = capsule.clone();
            assert_eq!(
                capsule.read_value().as_ref().as_ptr(),
                clone.read_value().as_ref().as_ptr(),
                "{:?} clone deep-copied its payload",
                capsule.kind()
            );
        }
    }

    #[test]
    fn default_is_lww_bottom() {
        let d = Capsule::default();
        assert_eq!(d.kind(), ConsistencyKind::Lww);
        assert_eq!(d.lww_timestamp(), Some(Timestamp::ZERO));
        assert!(d.read_value().is_empty());
    }
}

//! [`MaxLattice`] and [`BoolOrLattice`]: the simplest useful lattices.

use crate::traits::{BottomLattice, Lattice};

/// A lattice over any totally ordered type where `join` is `max`.
///
/// Anna composes this lattice into larger ones (e.g. the timestamp component
/// of the LWW lattice, logical clocks inside vector clocks). It is also used
/// directly for monotonically growing metrics such as high-water marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MaxLattice<T: Ord>(T);

impl<T: Ord> MaxLattice<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(value)
    }

    /// The current maximum.
    pub const fn get(&self) -> &T {
        &self.0
    }

    /// Unwrap the inner value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T: Ord + Clone> Lattice for MaxLattice<T> {
    fn join(&mut self, other: Self) {
        if other.0 > self.0 {
            self.0 = other.0;
        }
    }
}

impl<T: Ord + Clone + Default> BottomLattice for MaxLattice<T> {}

impl<T: Ord> From<T> for MaxLattice<T> {
    fn from(value: T) -> Self {
        Self(value)
    }
}

/// A lattice over booleans where `join` is logical OR; bottom is `false`.
///
/// Used for monotone flags (e.g. "this DAG has completed" markers in system
/// metadata) that may be set concurrently from several nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BoolOrLattice(bool);

impl BoolOrLattice {
    /// Wrap a boolean.
    pub const fn new(value: bool) -> Self {
        Self(value)
    }

    /// The current value.
    pub const fn get(self) -> bool {
        self.0
    }
}

impl Lattice for BoolOrLattice {
    fn join(&mut self, other: Self) {
        self.0 |= other.0;
    }
}

impl BottomLattice for BoolOrLattice {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_join_keeps_maximum() {
        let mut a = MaxLattice::new(4u64);
        a.join(MaxLattice::new(9));
        assert_eq!(a.get(), &9);
        a.join(MaxLattice::new(2));
        assert_eq!(a.get(), &9);
    }

    #[test]
    fn max_bottom_is_identity() {
        let mut a = MaxLattice::<u32>::bottom();
        a.join(MaxLattice::new(7));
        assert_eq!(a.into_inner(), 7);
    }

    #[test]
    fn bool_or_join() {
        let mut f = BoolOrLattice::new(false);
        f.join(BoolOrLattice::new(false));
        assert!(!f.get());
        f.join(BoolOrLattice::new(true));
        assert!(f.get());
        f.join(BoolOrLattice::new(false));
        assert!(f.get());
    }

    #[test]
    fn max_works_on_strings() {
        let mut a = MaxLattice::new("apple".to_string());
        a.join(MaxLattice::new("banana".to_string()));
        assert_eq!(a.get(), "banana");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn max_associative(a: u64, b: u64, c: u64) {
            let (a, b, c) = (MaxLattice::new(a), MaxLattice::new(b), MaxLattice::new(c));
            prop_assert_eq!(
                a.joined(b).joined(c),
                a.joined(b.joined(c))
            );
        }

        #[test]
        fn max_commutative(a: u64, b: u64) {
            let (a, b) = (MaxLattice::new(a), MaxLattice::new(b));
            prop_assert_eq!(a.joined(b), b.joined(a));
        }

        #[test]
        fn max_idempotent(a: u64) {
            let a = MaxLattice::new(a);
            prop_assert_eq!(a.joined(a), a);
        }

        #[test]
        fn bool_or_aci(a: bool, b: bool, c: bool) {
            let (a, b, c) = (BoolOrLattice::new(a), BoolOrLattice::new(b), BoolOrLattice::new(c));
            prop_assert_eq!(a.joined(b).joined(c), a.joined(b.joined(c)));
            prop_assert_eq!(a.joined(b), b.joined(a));
            prop_assert_eq!(a.joined(a), a);
        }
    }
}

//! Integration tests of the evaluation applications against a live
//! Cloudburst cluster.

use std::time::Duration;

use bytes::Bytes;
use cloudburst::cluster::{CloudburstCluster, CloudburstConfig};
use cloudburst::types::ConsistencyLevel;
use cloudburst_apps::gossip::{
    register_gather, register_gossip, run_gather_cloudburst, run_gossip, GossipConfig,
};
use cloudburst_apps::prediction::PredictionPipeline;
use cloudburst_apps::retwis::{Retwis, RetwisConfig, RetwisRedis};
use cloudburst_baselines::SimStorage;
use cloudburst_net::{Network, NetworkConfig};

#[test]
fn gossip_converges_to_the_mean() {
    let cluster = CloudburstCluster::launch(CloudburstConfig {
        vms: 4,
        executors_per_vm: 3,
        ..CloudburstConfig::instant()
    });
    let client = cluster.client();
    register_gossip(&client).unwrap();
    let values: Vec<f64> = (0..10).map(|i| 10.0 + i as f64).collect(); // mean 14.5
    let result = run_gossip(
        &cluster,
        &values,
        GossipConfig {
            actors: 10,
            rounds: 40,
            run_id: 1,
            round_wait_ms: 2.0,
        },
    )
    .unwrap();
    assert_eq!(result.estimates.len(), 10);
    assert!(
        result.converged(0.05),
        "estimates {:?} vs mean {}",
        result.estimates,
        result.true_mean
    );
}

#[test]
fn gather_on_cloudburst_computes_exact_mean() {
    let cluster = CloudburstCluster::launch(CloudburstConfig::instant());
    let client = cluster.client();
    register_gather(&client).unwrap();
    let values = vec![1.0, 2.0, 3.0, 4.0];
    let result = run_gather_cloudburst(&client, &values, 7).unwrap();
    assert!((result.estimates[0] - 2.5).abs() < 1e-9);
}

#[test]
fn gather_on_lambda_storage_computes_exact_mean() {
    let net = Network::new(NetworkConfig {
        time_scale: cloudburst_net::TimeScale::new(0.001),
        default_latency: cloudburst_net::LatencyModel::Zero,
        seed: 4,
        ..NetworkConfig::default()
    });
    let lambda = cloudburst_baselines::SimLambda::new(&net);
    let redis = SimStorage::redis(&net);
    cloudburst_apps::gossip::deploy_gather_lambda(&lambda, std::sync::Arc::clone(&redis));
    let values = vec![2.0, 4.0, 6.0];
    let result = cloudburst_apps::gossip::run_gather_storage(&lambda, &redis, &values, 3).unwrap();
    assert!((result.estimates[0] - 4.0).abs() < 1e-9);
}

#[test]
fn prediction_pipeline_serves_on_cloudburst() {
    let cluster = CloudburstCluster::launch(CloudburstConfig::instant());
    let client = cluster.client();
    let pipeline = PredictionPipeline::new("model/v1", 64 * 1024);
    pipeline.seed_model(&client).unwrap();
    pipeline.register(&client).unwrap();
    let (latency, label) = pipeline
        .call(&client, Bytes::from(vec![1u8; 4096]))
        .unwrap();
    assert!(label.starts_with("class-"));
    assert!(latency > Duration::ZERO);
    // Deterministic: same image, same label.
    let (_, label2) = pipeline
        .call(&client, Bytes::from(vec![1u8; 4096]))
        .unwrap();
    assert_eq!(label, label2);
}

#[test]
fn retwis_end_to_end_on_cloudburst() {
    let cluster = CloudburstCluster::launch(CloudburstConfig::instant());
    let client = cluster.client();
    Retwis::register(&client).unwrap();
    let app = Retwis::new(RetwisConfig {
        users: 20,
        follows_per_user: 5,
        initial_tweets: 50,
        ..RetwisConfig::default()
    });
    app.seed(&client).unwrap();
    // Post a fresh tweet and a reply to it.
    Retwis::post_tweet(&client, 0, "t-100", "hello world", None).unwrap();
    Retwis::post_tweet(&client, 1, "t-101", "re: hello", Some("t-100")).unwrap();
    // Timelines render.
    let mut total_tweets = 0;
    for user in 0..20 {
        let tl = Retwis::get_timeline(&client, user).unwrap();
        total_tweets += tl.tweets;
    }
    assert!(total_tweets > 0, "timelines must contain seeded tweets");
}

#[test]
fn retwis_causal_mode_prevents_anomalies_on_quiescent_data() {
    let mut config = CloudburstConfig::instant();
    config.level = ConsistencyLevel::DistributedSessionCausal;
    let cluster = CloudburstCluster::launch(config);
    let client = cluster.client();
    Retwis::register(&client).unwrap();
    let app = Retwis::new(RetwisConfig {
        users: 10,
        follows_per_user: 3,
        initial_tweets: 30,
        ..RetwisConfig::default()
    });
    app.seed(&client).unwrap();
    for user in 0..10 {
        let tl = Retwis::get_timeline(&client, user).unwrap();
        assert_eq!(tl.anomalies, 0, "user {user} saw anomalies on static data");
    }
}

#[test]
fn retwis_redis_baseline_works() {
    let net = Network::new(NetworkConfig {
        time_scale: cloudburst_net::TimeScale::new(0.001),
        default_latency: cloudburst_net::LatencyModel::Zero,
        seed: 6,
        ..NetworkConfig::default()
    });
    let redis = RetwisRedis::new(SimStorage::redis(&net));
    let config = RetwisConfig {
        users: 20,
        follows_per_user: 5,
        initial_tweets: 50,
        ..RetwisConfig::default()
    };
    redis.seed(&config);
    redis.post_tweet(3, "t-x", "hi", None);
    redis.post_tweet(4, "t-y", "re: hi", Some("t-x"));
    let (latency, tl) = redis.get_timeline(0);
    assert!(latency > Duration::ZERO);
    assert_eq!(tl.anomalies, 0, "single-node Redis is strongly consistent");
}

//! Workload generators: Zipf key popularity and random DAG shapes.

use rand::Rng;

/// A Zipf(θ) sampler over `0..n` via inverse-CDF binary search.
///
/// The evaluation draws keys "from a Zipfian distribution with coefficient
/// of 1.0" (§6.1.4, §6.2) and builds the Retwis graph with "zipf=1.5, a
/// realistic skew for online social networks" (§6.3.2). Implemented locally
/// (the offline `rand` has no Zipf distribution; DESIGN.md dependency
/// policy).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `0..n` with exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        Self { cdf }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true: `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank in `0..n` (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

/// Generate `count` random linear DAG shapes with lengths drawn uniformly
/// from `min_len..=max_len` over the given function names, mirroring §6.2:
/// "we generate 250 random DAGs which are 2 to 5 functions long, with an
/// average length of 3".
///
/// Returns, for each DAG, the list of function names in chain order (the
/// caller turns them into registered `DagSpec`s with unique names).
pub fn random_linear_dags<R: Rng + ?Sized>(
    count: usize,
    min_len: usize,
    max_len: usize,
    functions: &[&str],
    rng: &mut R,
) -> Vec<Vec<String>> {
    assert!(min_len >= 1 && max_len >= min_len);
    assert!(!functions.is_empty());
    (0..count)
        .map(|_| {
            let len = rng.random_range(min_len..=max_len);
            (0..len)
                .map(|_| functions[rng.random_range(0..functions.len())].to_string())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let sampler = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        // Zipf(1.0): rank 0 over 1000 keys gets ≈ 1/H_1000 ≈ 13 % of mass.
        let share = counts[0] as f64 / 100_000.0;
        assert!((0.08..0.20).contains(&share), "head share {share}");
    }

    #[test]
    fn zipf_zero_theta_is_uniform() {
        let sampler = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 50_000.0;
            assert!((0.07..0.13).contains(&frac), "not uniform: {frac}");
        }
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let sampler = ZipfSampler::new(7, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(sampler.sample(&mut rng) < 7);
        }
        assert_eq!(sampler.len(), 7);
    }

    #[test]
    fn zipf_higher_theta_is_more_skewed() {
        let mild = ZipfSampler::new(100, 0.8);
        let steep = ZipfSampler::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(4);
        let head =
            |s: &ZipfSampler, rng: &mut StdRng| (0..20_000).filter(|_| s.sample(rng) == 0).count();
        let mild_head = head(&mild, &mut rng);
        let steep_head = head(&steep, &mut rng);
        assert!(steep_head > mild_head);
    }

    #[test]
    fn random_dags_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let dags = random_linear_dags(250, 2, 5, &["f", "g"], &mut rng);
        assert_eq!(dags.len(), 250);
        let mut total = 0;
        for d in &dags {
            assert!((2..=5).contains(&d.len()));
            total += d.len();
        }
        let avg = total as f64 / dags.len() as f64;
        assert!(
            (3.0..4.0).contains(&avg),
            "average length {avg} (paper: ≈3)"
        );
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn zipf_rejects_empty_domain() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}

//! Retwis (§6.3.2, Figures 11 & 12): the open-source Twitter clone, ported
//! to Cloudburst "as a set of six Cloudburst functions", plus a serverful
//! Redis deployment for comparison.
//!
//! Conversational threads exercise causal consistency: "it is confusing to
//! read the response to a post before you have read the post it refers to."
//! [`TimelineResult::anomalies`] counts exactly those violations — a
//! timeline containing a reply whose parent tweet is unreadable.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cloudburst::codec;
use cloudburst::types::{Arg, InvocationResult};
use cloudburst_baselines::SimStorage;
use cloudburst_lattice::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workloads::ZipfSampler;

/// Retwis deployment parameters (§6.3.2's defaults).
#[derive(Debug, Clone, Copy)]
pub struct RetwisConfig {
    /// Number of users (paper: 1000).
    pub users: usize,
    /// Followees per user (paper: 50).
    pub follows_per_user: usize,
    /// Zipf skew of the follow graph (paper: 1.5).
    pub zipf: f64,
    /// Pre-populated tweets (paper: 5000).
    pub initial_tweets: usize,
    /// Fraction of tweets that reply to an earlier tweet (paper: half).
    pub reply_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RetwisConfig {
    fn default() -> Self {
        Self {
            users: 1000,
            follows_per_user: 50,
            zipf: 1.5,
            initial_tweets: 5000,
            reply_fraction: 0.5,
            seed: 0x007E_7715,
        }
    }
}

/// Result of one `GetTimeline` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineResult {
    /// Tweets rendered.
    pub tweets: usize,
    /// Causal anomalies: replies whose parent tweet was unreadable.
    pub anomalies: usize,
}

fn following_key(user: usize) -> Key {
    Key::new(format!("retwis/following/{user}"))
}
fn posts_key(user: usize) -> Key {
    Key::new(format!("retwis/posts/{user}"))
}
fn tweet_key(id: &str) -> Key {
    Key::new(format!("retwis/tweet/{id}"))
}
fn profile_key(user: usize) -> Key {
    Key::new(format!("retwis/user/{user}"))
}

/// The Retwis application.
#[derive(Debug, Clone)]
pub struct Retwis {
    config: RetwisConfig,
}

impl Retwis {
    /// A Retwis instance.
    pub fn new(config: RetwisConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RetwisConfig {
        &self.config
    }

    /// Register the six Cloudburst functions (the paper's port changed 44
    /// lines; ours registers six closures).
    pub fn register(client: &cloudburst::CloudburstClient) -> Result<(), cloudburst::ClientError> {
        // 1. RegisterUser
        client.register_function("retwis_register_user", |rt, args| {
            let user = codec::decode_i64(&args[0]).ok_or("bad user")? as usize;
            rt.put(&profile_key(user), args[1].clone());
            Ok(Bytes::new())
        })?;
        // 2. Follow
        client.register_function("retwis_follow", |rt, args| {
            let user = codec::decode_i64(&args[0]).ok_or("bad user")? as usize;
            let followee = codec::decode_i64(&args[1]).ok_or("bad followee")?;
            let key = following_key(user);
            let mut list = rt
                .get(&key)
                .and_then(|b| codec::decode_str(&b))
                .unwrap_or_default();
            if !list.is_empty() {
                list.push(',');
            }
            list.push_str(&followee.to_string());
            rt.put(&key, codec::encode_str(&list));
            Ok(Bytes::new())
        })?;
        // 3. Profile
        client.register_function("retwis_profile", |rt, args| {
            let user = codec::decode_i64(&args[0]).ok_or("bad user")? as usize;
            rt.get(&profile_key(user)).ok_or("no such user".into())
        })?;
        // 4. PostTweet: args = user, tweet_id, text, reply_to ("" if none)
        client.register_function("retwis_post", |rt, args| {
            let user = codec::decode_i64(&args[0]).ok_or("bad user")? as usize;
            let tweet_id = codec::decode_str(&args[1]).ok_or("bad id")?;
            let text = codec::decode_str(&args[2]).ok_or("bad text")?;
            let reply_to = codec::decode_str(&args[3]).unwrap_or_default();
            if !reply_to.is_empty() {
                // Read the parent: establishes the causal dependency
                // reply → parent that the causal protocols preserve.
                let _ = rt.get(&tweet_key(&reply_to));
            }
            rt.put(
                &tweet_key(&tweet_id),
                codec::encode_str(&format!("{user}|{reply_to}|{text}")),
            );
            // Append to the author's recent-posts list (keep last 10).
            let key = posts_key(user);
            let list = rt
                .get(&key)
                .and_then(|b| codec::decode_str(&b))
                .unwrap_or_default();
            let mut ids: Vec<&str> = list.split(',').filter(|s| !s.is_empty()).collect();
            ids.push(&tweet_id);
            let start = ids.len().saturating_sub(10);
            rt.put(&key, codec::encode_str(&ids[start..].join(",")));
            Ok(args[1].clone())
        })?;
        // 5. GetPosts
        client.register_function("retwis_get_posts", |rt, args| {
            let user = codec::decode_i64(&args[0]).ok_or("bad user")? as usize;
            Ok(rt.get(&posts_key(user)).unwrap_or_default())
        })?;
        // 6. GetTimeline: render followees' recent tweets; count causal
        // anomalies (reply visible, parent unreadable).
        client.register_function("retwis_timeline", |rt, args| {
            let user = codec::decode_i64(&args[0]).ok_or("bad user")? as usize;
            let following = rt
                .get(&following_key(user))
                .and_then(|b| codec::decode_str(&b))
                .unwrap_or_default();
            let mut tweets = 0usize;
            let mut anomalies = 0usize;
            for followee in following.split(',').filter(|s| !s.is_empty()).take(5) {
                let Ok(followee) = followee.parse::<usize>() else {
                    continue;
                };
                let posts = rt
                    .get(&posts_key(followee))
                    .and_then(|b| codec::decode_str(&b))
                    .unwrap_or_default();
                let recent: Vec<&str> = posts.split(',').filter(|s| !s.is_empty()).collect();
                let start = recent.len().saturating_sub(5);
                for id in &recent[start..] {
                    match rt.get(&tweet_key(id)).and_then(|b| codec::decode_str(&b)) {
                        Some(content) => {
                            tweets += 1;
                            let mut parts = content.splitn(3, '|');
                            let _author = parts.next();
                            let reply_to = parts.next().unwrap_or("");
                            if !reply_to.is_empty() {
                                // A reply: its parent must be readable.
                                if rt.get(&tweet_key(reply_to)).is_none() {
                                    anomalies += 1;
                                }
                            }
                        }
                        None => anomalies += 1, // listed tweet unreadable
                    }
                }
            }
            Ok(codec::encode_f64_slice(&[tweets as f64, anomalies as f64]))
        })?;
        Ok(())
    }

    /// Seed the social graph and initial tweets directly through the KVS
    /// (the paper pre-populates before measuring).
    pub fn seed(
        &self,
        client: &cloudburst::CloudburstClient,
    ) -> Result<Vec<String>, cloudburst::ClientError> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let zipf = ZipfSampler::new(cfg.users, cfg.zipf);
        // Follow graph.
        for user in 0..cfg.users {
            client.put(
                profile_key(user),
                codec::encode_str(&format!("user-{user}")),
            )?;
            let mut followees = Vec::with_capacity(cfg.follows_per_user);
            while followees.len() < cfg.follows_per_user.min(cfg.users - 1) {
                let f = zipf.sample(&mut rng);
                if f != user && !followees.contains(&f) {
                    followees.push(f);
                }
            }
            let list = followees
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            client.put(following_key(user), codec::encode_str(&list))?;
        }
        // Tweets: half replies to earlier tweets.
        let mut ids: Vec<String> = Vec::with_capacity(cfg.initial_tweets);
        let mut posts: std::collections::HashMap<usize, Vec<String>> =
            std::collections::HashMap::new();
        for n in 0..cfg.initial_tweets {
            let author = rng.random_range(0..cfg.users);
            let id = format!("seed-{n}");
            let reply_to = if !ids.is_empty() && rng.random::<f64>() < cfg.reply_fraction {
                ids[rng.random_range(0..ids.len())].clone()
            } else {
                String::new()
            };
            client.put(
                tweet_key(&id),
                codec::encode_str(&format!("{author}|{reply_to}|lorem ipsum #{n}")),
            )?;
            let user_posts = posts.entry(author).or_default();
            user_posts.push(id.clone());
            if user_posts.len() > 10 {
                user_posts.remove(0);
            }
            ids.push(id);
        }
        for (author, list) in posts {
            client.put(posts_key(author), codec::encode_str(&list.join(",")))?;
        }
        Ok(ids)
    }

    /// Post a tweet through the `retwis_post` function.
    pub fn post_tweet(
        client: &cloudburst::CloudburstClient,
        user: usize,
        tweet_id: &str,
        text: &str,
        reply_to: Option<&str>,
    ) -> Result<(), String> {
        let result = client
            .call_function(
                "retwis_post",
                vec![
                    Arg::value(codec::encode_i64(user as i64)),
                    Arg::value(codec::encode_str(tweet_id)),
                    Arg::value(codec::encode_str(text)),
                    Arg::value(codec::encode_str(reply_to.unwrap_or(""))),
                ],
            )
            .map_err(|e| e.to_string())?;
        match result {
            InvocationResult::Ok(_) => Ok(()),
            InvocationResult::Err(e) => Err(e),
        }
    }

    /// Fetch a user's timeline through the `retwis_timeline` function.
    pub fn get_timeline(
        client: &cloudburst::CloudburstClient,
        user: usize,
    ) -> Result<TimelineResult, String> {
        let result = client
            .call_function(
                "retwis_timeline",
                vec![Arg::value(codec::encode_i64(user as i64))],
            )
            .map_err(|e| e.to_string())?;
        match result {
            InvocationResult::Ok(bytes) => {
                let pair = codec::decode_f64_slice(&bytes).ok_or("bad timeline")?;
                Ok(TimelineResult {
                    tweets: pair[0] as usize,
                    anomalies: pair[1] as usize,
                })
            }
            InvocationResult::Err(e) => Err(e),
        }
    }
}

/// The serverful comparison: Retwis over (simulated) Redis, with the client
/// talking straight to web-server logic backed by Redis ops.
#[derive(Debug, Clone)]
pub struct RetwisRedis {
    storage: Arc<SimStorage>,
}

impl RetwisRedis {
    /// Deploy over a Redis instance.
    pub fn new(storage: Arc<SimStorage>) -> Self {
        Self { storage }
    }

    /// Seed graph + tweets (same shapes as the Cloudburst deployment).
    pub fn seed(&self, config: &RetwisConfig) {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zipf = ZipfSampler::new(config.users, config.zipf);
        for user in 0..config.users {
            let mut followees = Vec::new();
            while followees.len() < config.follows_per_user.min(config.users - 1) {
                let f = zipf.sample(&mut rng);
                if f != user && !followees.contains(&f) {
                    followees.push(f);
                }
            }
            let list = followees
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            self.storage
                .put(format!("following/{user}"), codec::encode_str(&list));
        }
        let mut ids: Vec<String> = Vec::new();
        let mut posts: std::collections::HashMap<usize, Vec<String>> =
            std::collections::HashMap::new();
        for n in 0..config.initial_tweets {
            let author = rng.random_range(0..config.users);
            let id = format!("seed-{n}");
            let reply_to = if !ids.is_empty() && rng.random::<f64>() < config.reply_fraction {
                ids[rng.random_range(0..ids.len())].clone()
            } else {
                String::new()
            };
            self.storage.put(
                format!("tweet/{id}"),
                codec::encode_str(&format!("{author}|{reply_to}|lorem ipsum #{n}")),
            );
            let user_posts = posts.entry(author).or_default();
            user_posts.push(id.clone());
            if user_posts.len() > 10 {
                user_posts.remove(0);
            }
            ids.push(id);
        }
        for (author, list) in posts {
            self.storage.put(
                format!("posts/{author}"),
                codec::encode_str(&list.join(",")),
            );
        }
    }

    /// PostTweet against Redis.
    pub fn post_tweet(&self, user: usize, tweet_id: &str, text: &str, reply_to: Option<&str>) {
        let reply = reply_to.unwrap_or("");
        if !reply.is_empty() {
            let _ = self.storage.get(&format!("tweet/{reply}"));
        }
        self.storage.put(
            format!("tweet/{tweet_id}"),
            codec::encode_str(&format!("{user}|{reply}|{text}")),
        );
        let list = self
            .storage
            .get(&format!("posts/{user}"))
            .and_then(|b| codec::decode_str(&b))
            .unwrap_or_default();
        let mut ids: Vec<&str> = list.split(',').filter(|s| !s.is_empty()).collect();
        ids.push(tweet_id);
        let start = ids.len().saturating_sub(10);
        self.storage.put(
            format!("posts/{user}"),
            codec::encode_str(&ids[start..].join(",")),
        );
    }

    /// GetTimeline against Redis; returns (duration, result).
    pub fn get_timeline(&self, user: usize) -> (Duration, TimelineResult) {
        // lint: allow(L003): returned Duration is the measured request latency, the workload's output
        let start = Instant::now();
        let following = self
            .storage
            .get(&format!("following/{user}"))
            .and_then(|b| codec::decode_str(&b))
            .unwrap_or_default();
        let mut tweets = 0;
        let mut anomalies = 0;
        for followee in following.split(',').filter(|s| !s.is_empty()).take(5) {
            let posts = self
                .storage
                .get(&format!("posts/{followee}"))
                .and_then(|b| codec::decode_str(&b))
                .unwrap_or_default();
            let recent: Vec<&str> = posts.split(',').filter(|s| !s.is_empty()).collect();
            let start = recent.len().saturating_sub(5);
            for id in &recent[start..] {
                match self
                    .storage
                    .get(&format!("tweet/{id}"))
                    .and_then(|b| codec::decode_str(&b))
                {
                    Some(content) => {
                        tweets += 1;
                        let reply_to = content.split('|').nth(1).unwrap_or("");
                        if !reply_to.is_empty()
                            && self.storage.get(&format!("tweet/{reply_to}")).is_none()
                        {
                            anomalies += 1;
                        }
                    }
                    None => anomalies += 1,
                }
            }
        }
        (start.elapsed(), TimelineResult { tweets, anomalies })
    }
}

//! Prediction serving (§6.3.1, Figures 9 & 10): a three-stage pipeline —
//! resize the input image, execute a MobileNet-style model, combine features
//! into a prediction — deployed on Cloudburst and on the comparison systems.
//!
//! The TensorFlow model is substituted by a deterministic compute kernel
//! whose cost matches the paper's native-Python pipeline (≈210 ms median),
//! with the model weights stored as a large Anna object fetched by KVS
//! reference (which is exactly the data-movement path the experiment
//! measures). See DESIGN.md §2.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cloudburst::codec;
use cloudburst::dag::DagSpec;
use cloudburst::types::{Arg, InvocationResult};
use cloudburst_baselines::serverful::TaskRunner;
use cloudburst_baselines::{calibration, SimLambda, SimStorage};
use cloudburst_lattice::Key;
use cloudburst_net::Network;

/// Stage compute costs in paper milliseconds. Native total ≈ 210 ms, the
/// paper's measured Python median.
pub const RESIZE_MS: f64 = 25.0;
/// Model-execution stage cost.
pub const MODEL_MS: f64 = 175.0;
/// Feature-combination stage cost.
pub const COMBINE_MS: f64 = 10.0;

/// The three-stage pipeline.
#[derive(Debug, Clone)]
pub struct PredictionPipeline {
    /// Key the model weights are stored under.
    pub model_key: Key,
    /// Model weight blob size in bytes.
    pub model_bytes: usize,
}

impl PredictionPipeline {
    /// A pipeline whose weights live at `model_key`.
    pub fn new(model_key: impl Into<Key>, model_bytes: usize) -> Self {
        Self {
            model_key: model_key.into(),
            model_bytes,
        }
    }

    /// Store the (synthetic) model weights in the KVS.
    pub fn seed_model(
        &self,
        client: &cloudburst::CloudburstClient,
    ) -> Result<(), cloudburst::ClientError> {
        client.put(self.model_key.clone(), vec![7u8; self.model_bytes])
    }

    /// Register the three stages and the `prediction` DAG on Cloudburst.
    /// Porting effort mirrors the paper: the only addition over native
    /// Python is retrieving the model from Anna (4 LOC there, one `get`
    /// here).
    pub fn register(
        &self,
        client: &cloudburst::CloudburstClient,
    ) -> Result<(), cloudburst::ClientError> {
        let model_key = self.model_key.clone();
        client.register_function("resize", |rt, args| {
            rt.compute(RESIZE_MS);
            // "Resized" image: passthrough payload.
            Ok(args[0].clone())
        })?;
        client.register_function("model", move |rt, args| {
            // Retrieve the model from Anna (cached after first use).
            let weights = rt.get(&model_key).ok_or("model weights missing")?;
            rt.compute(MODEL_MS);
            // Feature vector derived from image + weights sizes.
            let feature = (args[0].len() + weights.len()) as i64;
            Ok(codec::encode_i64(feature))
        })?;
        client.register_function("combine", |rt, args| {
            rt.compute(COMBINE_MS);
            let feature = codec::decode_i64(&args[0]).ok_or("bad feature")?;
            Ok(codec::encode_str(&format!("class-{}", feature % 1000)))
        })?;
        client.register_dag(DagSpec::linear(
            "prediction",
            &["resize", "model", "combine"],
        ))?;
        Ok(())
    }

    /// Serve one prediction through Cloudburst; returns (latency, label).
    pub fn call(
        &self,
        client: &cloudburst::CloudburstClient,
        image: Bytes,
    ) -> Result<(Duration, String), String> {
        // lint: allow(L003): returned Duration is the measured serving latency, the app's output
        let start = Instant::now();
        let result = client
            .call_dag("prediction", HashMap::from([(0, vec![Arg::value(image)])]))
            .map_err(|e| e.to_string())?;
        let elapsed = start.elapsed();
        match result {
            InvocationResult::Ok(bytes) => {
                Ok((elapsed, codec::decode_str(&bytes).ok_or("bad label")?))
            }
            InvocationResult::Err(e) => Err(e),
        }
    }

    /// Deploy the pipeline on a serverful [`TaskRunner`] (native Python,
    /// SageMaker, Dask): weights held in process, stages chained internally.
    pub fn deploy_runner(&self, runner: &Arc<TaskRunner>) {
        let net = runner.network().clone();
        let weights_len = self.model_bytes;
        runner.deploy("resize", {
            let net = net.clone();
            move |args: &[Bytes]| {
                net.sleep_paper_ms(RESIZE_MS);
                args[0].clone()
            }
        });
        runner.deploy("model", {
            let net = net.clone();
            move |args: &[Bytes]| {
                net.sleep_paper_ms(MODEL_MS);
                codec::encode_i64((args[0].len() + weights_len) as i64)
            }
        });
        runner.deploy("combine", move |args: &[Bytes]| {
            net.sleep_paper_ms(COMBINE_MS);
            let feature = codec::decode_i64(&args[0]).unwrap_or(0);
            codec::encode_str(&format!("class-{}", feature % 1000))
        });
    }

    /// Serve one prediction through a serverful runner.
    pub fn call_runner(&self, runner: &Arc<TaskRunner>, image: Bytes) -> Result<Duration, String> {
        // lint: allow(L003): returned Duration is the measured serving latency, the app's output
        let start = Instant::now();
        runner.chain(&["resize", "model", "combine"], image)?;
        Ok(start.elapsed())
    }

    /// Deploy the pipeline on simulated Lambda. `actual` mode pays the
    /// result-passing penalty between stages and fetches weights from S3 on
    /// every model invocation (no caches, 512 MB container limit → no
    /// resident weights); mock mode isolates pure invocation overhead by
    /// removing all data movement (§6.3.1).
    pub fn deploy_lambda(&self, lambda: &Arc<SimLambda>, s3: Option<Arc<SimStorage>>) {
        let net: Network = lambda.network().clone();
        if let Some(s3) = &s3 {
            s3.put(
                self.model_key.as_str(),
                Bytes::from(vec![7u8; self.model_bytes]),
            );
        }
        lambda.deploy("resize", {
            let net = net.clone();
            move |args: &[Bytes]| {
                net.sleep_paper_ms(RESIZE_MS);
                args[0].clone()
            }
        });
        let model_key = self.model_key.clone();
        let weights_len = self.model_bytes;
        lambda.deploy("model", {
            let net = net.clone();
            move |args: &[Bytes]| {
                let fetched_len = match &s3 {
                    Some(s3) => s3.get(model_key.as_str()).map_or(0, |w| w.len()),
                    None => weights_len, // mock: weights assumed resident
                };
                net.sleep_paper_ms(MODEL_MS);
                codec::encode_i64((args[0].len() + fetched_len) as i64)
            }
        });
        lambda.deploy("combine", move |args: &[Bytes]| {
            net.sleep_paper_ms(COMBINE_MS);
            let feature = codec::decode_i64(&args[0]).unwrap_or(0);
            codec::encode_str(&format!("class-{}", feature % 1000))
        });
    }

    /// Serve one prediction through Lambda. With `result_passing`, each
    /// inter-stage hop pays the Lambda runtime's result-passing penalty
    /// (the Lambda-Actual configuration).
    pub fn call_lambda(
        &self,
        lambda: &Arc<SimLambda>,
        image: Bytes,
        result_passing: bool,
    ) -> Result<Duration, String> {
        // lint: allow(L003): returned Duration is the measured serving latency, the app's output
        let start = Instant::now();
        let net = lambda.network().clone();
        let mut value = image;
        for (i, stage) in ["resize", "model", "combine"].iter().enumerate() {
            if result_passing && i > 0 {
                let pause = net.sample(calibration::LAMBDA_RESULT_PASS);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            value = lambda.invoke(stage, &[value])?;
        }
        Ok(start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_baselines::NativePython;
    use cloudburst_net::{LatencyModel, NetworkConfig, TimeScale};

    fn fast_net() -> Network {
        Network::new(NetworkConfig {
            time_scale: TimeScale::new(0.001),
            default_latency: LatencyModel::Zero,
            seed: 9,
            ..NetworkConfig::default()
        })
    }

    #[test]
    fn native_pipeline_produces_label() {
        let net = fast_net();
        let pipeline = PredictionPipeline::new("model/v1", 1024);
        let python = NativePython::new(&net);
        pipeline.deploy_runner(&python);
        let out = python
            .chain(&["resize", "model", "combine"], Bytes::from(vec![0u8; 64]))
            .unwrap();
        let label = codec::decode_str(&out).unwrap();
        assert!(label.starts_with("class-"), "{label}");
    }

    #[test]
    fn lambda_actual_slower_than_mock() {
        let net = Network::new(NetworkConfig {
            time_scale: TimeScale::new(0.01),
            default_latency: LatencyModel::Zero,
            seed: 10,
            ..NetworkConfig::default()
        });
        let pipeline = PredictionPipeline::new("model/v1", 1 << 20);
        let mock = SimLambda::new(&net);
        pipeline.deploy_lambda(&mock, None);
        let actual = SimLambda::new(&net);
        pipeline.deploy_lambda(&actual, Some(SimStorage::s3(&net)));
        let image = Bytes::from(vec![0u8; 4096]);
        let mock_t: Duration = (0..5)
            .map(|_| pipeline.call_lambda(&mock, image.clone(), false).unwrap())
            .sum();
        let actual_t: Duration = (0..5)
            .map(|_| pipeline.call_lambda(&actual, image.clone(), true).unwrap())
            .sum();
        assert!(
            actual_t > mock_t.mul_f64(1.5),
            "actual {actual_t:?} must be well above mock {mock_t:?}"
        );
    }
}

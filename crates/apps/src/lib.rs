//! Applications and workload generators from the Cloudburst evaluation.
//!
//! * [`workloads`] — Zipf samplers and random DAG generation (§6.2's 250
//!   random DAGs over a Zipf-1.0 key space; Retwis' Zipf-1.5 social graph).
//! * [`gossip`] — the Kempe et al. gossip-based distributed aggregation
//!   protocol and the centralized "gather" workaround (§6.1.3, Figure 6).
//! * [`prediction`] — the three-stage MobileNet-style prediction-serving
//!   pipeline (§6.3.1, Figures 9 & 10).
//! * [`retwis`] — the Retwis Twitter clone with causal-anomaly detection
//!   (§6.3.2, Figures 11 & 12).

#![warn(missing_docs)]

pub mod gossip;
pub mod prediction;
pub mod retwis;
pub mod workloads;

pub use gossip::{
    run_gather_cloudburst, run_gather_storage, run_gossip, GossipConfig, GossipResult,
};
pub use prediction::PredictionPipeline;
pub use retwis::{Retwis, RetwisConfig, TimelineResult};
pub use workloads::{random_linear_dags, ZipfSampler};

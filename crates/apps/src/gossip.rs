//! Distributed aggregation (§6.1.3, Figure 6): the gossip-based push-sum
//! protocol of Kempe et al. running on Cloudburst's direct communication
//! API, and the centralized "gather" workaround used on systems that forbid
//! direct communication.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cloudburst::cluster::CloudburstCluster;
use cloudburst::codec;
use cloudburst::executor::ExecutorRequest;
use cloudburst::types::{Arg, InvocationResult};
use cloudburst_baselines::SimStorage;
use cloudburst_lattice::Key;
use cloudburst_net::reply_channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for one aggregation run.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// Number of participating actors (the paper uses 10).
    pub actors: usize,
    /// Push-sum rounds per actor (push-sum converges exponentially; ~30
    /// rounds reach well under 5 % error for 10 actors).
    pub rounds: usize,
    /// Distinguishes concurrent runs' KVS keys.
    pub run_id: u64,
    /// Per-round wait for incoming shares, in paper milliseconds.
    pub round_wait_ms: f64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            actors: 10,
            rounds: 30,
            run_id: 0,
            round_wait_ms: 2.0,
        }
    }
}

/// Outcome of one aggregation run.
#[derive(Debug, Clone)]
pub struct GossipResult {
    /// Wall-clock duration of the whole protocol.
    pub elapsed: Duration,
    /// Each actor's final estimate of the mean.
    pub estimates: Vec<f64>,
    /// The true mean of the inputs.
    pub true_mean: f64,
}

impl GossipResult {
    /// Whether every estimate is within `tolerance` (e.g. 0.05 for the
    /// paper's 5 %) of the true mean.
    pub fn converged(&self, tolerance: f64) -> bool {
        self.estimates
            .iter()
            .all(|&e| (e - self.true_mean).abs() <= tolerance * self.true_mean.abs().max(1e-12))
    }
}

/// Register the gossip actor function on a Cloudburst client.
pub fn register_gossip(
    client: &cloudburst::CloudburstClient,
) -> Result<(), cloudburst::ClientError> {
    client.register_function("gossip_actor", |rt, args| {
        // args: run_id, index, n, value, rounds, round_wait_ms
        let run_id = codec::decode_i64(&args[0]).ok_or("bad run id")?;
        let index = codec::decode_i64(&args[1]).ok_or("bad index")? as usize;
        let n = codec::decode_i64(&args[2]).ok_or("bad n")? as usize;
        let value = codec::decode_f64(&args[3]).ok_or("bad value")?;
        let rounds = codec::decode_i64(&args[4]).ok_or("bad rounds")? as usize;
        let round_wait_ms = codec::decode_f64(&args[5]).ok_or("bad wait")?;

        // Advertise this thread's unique ID at a well-known key, then
        // discover all peers (the §3 rendezvous pattern).
        let my_id = rt.executor_id();
        rt.put(
            &Key::new(format!("gossip/{run_id}/{index}")),
            codec::encode_i64(my_id as i64),
        );
        let mut peers: Vec<u64> = Vec::with_capacity(n);
        for attempt in 0..2_000 {
            peers.clear();
            for j in 0..n {
                if let Some(raw) = rt.get(&Key::new(format!("gossip/{run_id}/{j}"))) {
                    if let Some(id) = codec::decode_i64(&raw) {
                        peers.push(id as u64);
                        continue;
                    }
                }
                break;
            }
            if peers.len() == n {
                break;
            }
            if attempt == 1_999 {
                return Err(format!("actor {index}: peers never all advertised"));
            }
            rt.compute(1.0);
        }

        // Push-sum (Kempe et al. 2003): mass conservation makes x/w converge
        // to the mean at every actor.
        let mut rng = StdRng::seed_from_u64(0x0060_551F ^ (run_id as u64) ^ index as u64);
        let mut x = value;
        let mut w = 1.0f64;
        let apply = |x: &mut f64, w: &mut f64, msgs: Vec<Bytes>| {
            for m in msgs {
                if let Some(pair) = codec::decode_f64_slice(&m) {
                    if pair.len() == 2 {
                        *x += pair[0];
                        *w += pair[1];
                    }
                }
            }
        };
        for _ in 0..rounds {
            // Send half our mass to a random peer (possibly ourselves,
            // which is a no-op share).
            let target = peers[rng.random_range(0..peers.len())];
            if target != my_id {
                let share = codec::encode_f64_slice(&[x / 2.0, w / 2.0]);
                rt.send(target, share);
                x /= 2.0;
                w /= 2.0;
            }
            let incoming = rt.recv_timeout(round_wait_ms);
            apply(&mut x, &mut w, incoming);
        }
        // Settle: collect any shares still in flight so mass is conserved.
        for _ in 0..5 {
            let incoming = rt.recv_timeout(round_wait_ms * 2.0);
            apply(&mut x, &mut w, incoming);
        }
        Ok(codec::encode_f64(x / w))
    })
}

/// Run the gossip protocol on `config.actors` distinct executors.
///
/// Placement note: the paper pre-places its 10 actors on a 12-thread
/// deployment; we likewise address one invocation to each of N distinct
/// executors (through the executor API directly) because the protocol
/// requires all actors to run concurrently.
pub fn run_gossip(
    cluster: &CloudburstCluster,
    values: &[f64],
    config: GossipConfig,
) -> Result<GossipResult, String> {
    let n = config.actors;
    assert_eq!(values.len(), n, "one value per actor");
    let executors = cluster.topology().executors();
    if executors.len() < n {
        return Err(format!("need {n} executors, have {}", executors.len()));
    }
    let net = cluster.network().clone();
    let control = net.register();
    // lint: allow(L003): measured experiment latency is the app's output
    let start = Instant::now();
    let mut waiters = Vec::with_capacity(n);
    for (i, value) in values.iter().enumerate() {
        let (_, info) = executors[i];
        let (reply, waiter) = reply_channel::<InvocationResult>(&net);
        let args = vec![
            Arg::value(codec::encode_i64(config.run_id as i64)),
            Arg::value(codec::encode_i64(i as i64)),
            Arg::value(codec::encode_i64(n as i64)),
            Arg::value(codec::encode_f64(*value)),
            Arg::value(codec::encode_i64(config.rounds as i64)),
            Arg::value(codec::encode_f64(config.round_wait_ms)),
        ];
        let args = args
            .into_iter()
            .map(|a| match a {
                Arg::Value(v) => Arg::Value(v),
                r => r,
            })
            .collect();
        control
            .send(
                info.addr,
                ExecutorRequest::InvokeSingle {
                    function: "gossip_actor".into(),
                    args,
                    reply,
                    response_key: None,
                },
            )
            .map_err(|e| e.to_string())?;
        waiters.push(waiter);
    }
    let mut estimates = Vec::with_capacity(n);
    for (i, waiter) in waiters.into_iter().enumerate() {
        let result = waiter
            .wait_timeout(Duration::from_secs(60))
            .map_err(|e| format!("actor {i}: {e}"))?;
        match result {
            InvocationResult::Ok(bytes) => {
                estimates.push(codec::decode_f64(&bytes).ok_or("bad estimate")?);
            }
            InvocationResult::Err(e) => return Err(format!("actor {i}: {e}")),
        }
    }
    let elapsed = start.elapsed();
    let true_mean = values.iter().sum::<f64>() / n as f64;
    Ok(GossipResult {
        elapsed,
        estimates,
        true_mean,
    })
}

/// The centralized "gather" algorithm on Cloudburst: each actor publishes
/// its metric to the KVS, a leader collects and averages. "Unlike
/// \[gossip\], \[it\] requires the population to be fixed in advance, and is
/// therefore not a good fit to an autoscaling setting" (§6.1.3).
pub fn run_gather_cloudburst(
    client: &cloudburst::CloudburstClient,
    values: &[f64],
    run_id: u64,
) -> Result<GossipResult, String> {
    // lint: allow(L003): measured experiment latency is the app's output
    let start = Instant::now();
    // Each "actor" publishes (we drive the publications as function calls).
    for (i, v) in values.iter().enumerate() {
        let result = client
            .call_function(
                "gather_publish",
                vec![
                    Arg::value(codec::encode_i64(run_id as i64)),
                    Arg::value(codec::encode_i64(i as i64)),
                    Arg::value(codec::encode_f64(*v)),
                ],
            )
            .map_err(|e| e.to_string())?;
        if !result.is_ok() {
            return Err("publish failed".into());
        }
    }
    let result = client
        .call_function(
            "gather_leader",
            vec![
                Arg::value(codec::encode_i64(run_id as i64)),
                Arg::value(codec::encode_i64(values.len() as i64)),
            ],
        )
        .map_err(|e| e.to_string())?;
    let InvocationResult::Ok(bytes) = result else {
        return Err("leader failed".into());
    };
    let mean = codec::decode_f64(&bytes).ok_or("bad mean")?;
    Ok(GossipResult {
        elapsed: start.elapsed(),
        estimates: vec![mean],
        true_mean: values.iter().sum::<f64>() / values.len() as f64,
    })
}

/// Register the gather functions.
pub fn register_gather(
    client: &cloudburst::CloudburstClient,
) -> Result<(), cloudburst::ClientError> {
    client.register_function("gather_publish", |rt, args| {
        let run_id = codec::decode_i64(&args[0]).ok_or("bad run")?;
        let index = codec::decode_i64(&args[1]).ok_or("bad index")?;
        rt.put(
            &Key::new(format!("gather/{run_id}/{index}")),
            args[2].clone(),
        );
        Ok(Bytes::new())
    })?;
    client.register_function("gather_leader", |rt, args| {
        let run_id = codec::decode_i64(&args[0]).ok_or("bad run")?;
        let n = codec::decode_i64(&args[1]).ok_or("bad n")? as usize;
        let mut sum = 0.0;
        for i in 0..n {
            let key = Key::new(format!("gather/{run_id}/{i}"));
            let mut found = None;
            for _ in 0..2_000 {
                if let Some(raw) = rt.get(&key) {
                    if let Some(v) = codec::decode_f64(&raw) {
                        found = Some(v);
                        break;
                    }
                }
                rt.compute(0.5);
            }
            sum += found.ok_or_else(|| format!("value {i} never published"))?;
        }
        Ok(codec::encode_f64(sum / n as f64))
    })?;
    Ok(())
}

/// The gather algorithm over a simulated storage service (Lambda + Redis /
/// Lambda + DynamoDB / Lambda + S3 in Figure 6): each publish and the final
/// gather are separate Lambda invocations communicating through storage.
pub fn run_gather_storage(
    lambda: &cloudburst_baselines::SimLambda,
    storage: &Arc<SimStorage>,
    values: &[f64],
    run_id: u64,
) -> Result<GossipResult, String> {
    // lint: allow(L003): measured experiment latency is the app's output
    let start = Instant::now();
    for (i, v) in values.iter().enumerate() {
        lambda.invoke(
            "publish",
            &[
                codec::encode_i64(run_id as i64),
                codec::encode_i64(i as i64),
                codec::encode_f64(*v),
            ],
        )?;
    }
    let out = lambda.invoke(
        "gather",
        &[
            codec::encode_i64(run_id as i64),
            codec::encode_i64(values.len() as i64),
        ],
    )?;
    let mean = codec::decode_f64(&out).ok_or("bad mean")?;
    let _ = storage;
    Ok(GossipResult {
        elapsed: start.elapsed(),
        estimates: vec![mean],
        true_mean: values.iter().sum::<f64>() / values.len() as f64,
    })
}

/// Deploy the storage-backed gather functions onto a simulated Lambda.
pub fn deploy_gather_lambda(lambda: &cloudburst_baselines::SimLambda, storage: Arc<SimStorage>) {
    let publish_store = Arc::clone(&storage);
    lambda.deploy("publish", move |args| {
        let run_id = codec::decode_i64(&args[0]).unwrap_or(0);
        let index = codec::decode_i64(&args[1]).unwrap_or(0);
        publish_store.put(format!("gather/{run_id}/{index}"), args[2].clone());
        Bytes::new()
    });
    lambda.deploy("gather", move |args| {
        let run_id = codec::decode_i64(&args[0]).unwrap_or(0);
        let n = codec::decode_i64(&args[1]).unwrap_or(0) as usize;
        let mut sum = 0.0;
        for i in 0..n {
            if let Some(raw) = storage.get(&format!("gather/{run_id}/{i}")) {
                sum += codec::decode_f64(&raw).unwrap_or(0.0);
            }
        }
        codec::encode_f64(sum / n.max(1) as f64)
    });
}

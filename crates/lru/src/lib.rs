//! [`SlotLru`]: an O(1) slab-indexed doubly-linked LRU list, shared by the
//! Anna tiered store (`cloudburst_anna::TieredStore`) and the VM caches
//! (`cloudburst::cache::VmCache`).
//!
//! Both components previously kept recency as a `BTreeSet<(u64, Key)>` plus a
//! `HashMap<Key, u64>` of back-pointers: every touch cost `O(log n)` and two
//! key clones, and every eviction another `O(log n)`. This crate replaces
//! that with an intrusive doubly-linked list whose nodes live in a slab
//! (`Vec` + free-list). Callers keep the returned slot id next to their own
//! map entry, so the hot *touch* path is a pointer splice with **no hashing
//! at all** — the owner's single map lookup finds both the value and the
//! recency slot.
//!
//! Touch, insert, remove, and evict are all `O(1)` with no per-operation
//! allocation in the steady state (slab growth amortizes away; keys are
//! cheap-clone `Arc<str>` handles, moved — not copied — on insert).

#![warn(missing_docs)]

use cloudburst_lattice::Key;

const NIL: u32 = u32::MAX;

/// Shared placeholder left in freed slab slots so a removed entry's real key
/// (and its interner entry) is released immediately rather than pinned until
/// the slot is reused. Cloning it is a refcount bump.
fn tombstone() -> Key {
    static TOMBSTONE: std::sync::OnceLock<Key> = std::sync::OnceLock::new();
    TOMBSTONE.get_or_init(|| Key::new("")).clone()
}

#[derive(Debug, Clone)]
struct Node {
    key: Key,
    prev: u32,
    next: u32,
}

/// The slab-backed recency list. Slots are stable `u32` ids handed out by
/// [`SlotLru::insert`]; the list is ordered coldest-first.
#[derive(Debug)]
pub struct SlotLru {
    slab: Vec<Node>,
    free: Vec<u32>,
    len: usize,
    /// Coldest (least recently used) node.
    head: u32,
    /// Hottest (most recently used) node.
    tail: u32,
}

impl Default for SlotLru {
    /// Equivalent to [`SlotLru::new`] (a derived default would zero
    /// `head`/`tail`, which are NIL-sentinel indices, not counts).
    fn default() -> Self {
        Self::new()
    }
}

impl SlotLru {
    /// An empty list.
    pub fn new() -> Self {
        Self {
            slab: Vec::new(),
            free: Vec::new(),
            len: 0,
            head: NIL,
            tail: NIL,
        }
    }

    /// An empty list with room for `capacity` keys before reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add `key` at the hot end, returning its slot. The caller must not
    /// insert a key it already tracks (keep the slot instead and
    /// [`SlotLru::touch`] it).
    pub fn insert(&mut self, key: Key) -> u32 {
        let idx = self.alloc(key);
        self.push_tail(idx);
        self.len += 1;
        idx
    }

    /// Move `slot` to the hot end. O(1), no hashing.
    pub fn touch(&mut self, slot: u32) {
        if self.tail == slot {
            return;
        }
        self.unlink(slot);
        self.push_tail(slot);
    }

    /// Remove `slot`, returning its key. The slot id must have come from
    /// [`SlotLru::insert`] and not been removed since.
    pub fn remove(&mut self, slot: u32) -> Key {
        self.unlink(slot);
        self.free.push(slot);
        self.len -= 1;
        std::mem::replace(&mut self.slab[slot as usize].key, tombstone())
    }

    /// The least-recently-used key, if any.
    pub fn coldest(&self) -> Option<&Key> {
        (self.head != NIL).then(|| &self.slab[self.head as usize].key)
    }

    /// Remove and return the least-recently-used entry.
    pub fn pop_coldest(&mut self) -> Option<Key> {
        let idx = self.head;
        if idx == NIL {
            return None;
        }
        Some(self.remove(idx))
    }

    /// Keys from coldest to hottest (diagnostics and tests).
    pub fn iter_coldest_first(&self) -> impl Iterator<Item = &Key> {
        let mut cursor = self.head;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let node = &self.slab[cursor as usize];
            cursor = node.next;
            Some(&node.key)
        })
    }

    /// Drop all entries, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.slab.clear();
        self.free.clear();
        self.len = 0;
        self.head = NIL;
        self.tail = NIL;
    }

    fn alloc(&mut self, key: Key) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.slab[idx as usize] = Node {
                key,
                prev: NIL,
                next: NIL,
            };
            return idx;
        }
        let idx = u32::try_from(self.slab.len()).expect("LRU slab exceeds u32::MAX entries");
        self.slab.push(Node {
            key,
            prev: NIL,
            next: NIL,
        });
        idx
    }

    fn push_tail(&mut self, idx: u32) {
        let old_tail = self.tail;
        {
            let node = &mut self.slab[idx as usize];
            node.prev = old_tail;
            node.next = NIL;
        }
        if old_tail != NIL {
            self.slab[old_tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let node = &self.slab[idx as usize];
            (node.prev, node.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let node = &mut self.slab[idx as usize];
        node.prev = NIL;
        node.next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Test double for how TieredStore / CacheShard use SlotLru: the owner
    /// keeps the slot next to its own entry.
    #[derive(Default)]
    struct Owner {
        slots: HashMap<String, u32>,
        lru: SlotLru,
    }

    impl Owner {
        fn touch(&mut self, name: &str) -> bool {
            if let Some(&slot) = self.slots.get(name) {
                self.lru.touch(slot);
                return false;
            }
            let slot = self.lru.insert(k(name));
            self.slots.insert(name.to_string(), slot);
            true
        }

        fn remove(&mut self, name: &str) -> bool {
            let Some(slot) = self.slots.remove(name) else {
                return false;
            };
            self.lru.remove(slot);
            true
        }

        fn pop_coldest(&mut self) -> Option<String> {
            let key = self.lru.pop_coldest()?;
            self.slots.remove(key.as_str());
            Some(key.as_str().to_string())
        }
    }

    fn k(name: &str) -> Key {
        Key::new(name)
    }

    fn order(l: &SlotLru) -> Vec<String> {
        l.iter_coldest_first()
            .map(|k| k.as_str().to_string())
            .collect()
    }

    #[test]
    fn default_is_a_valid_empty_list() {
        // Regression: a derived Default zeroed the head/tail sentinels,
        // corrupting the list from the first touch.
        let mut l = SlotLru::default();
        assert!(l.is_empty());
        assert!(l.coldest().is_none());
        assert!(l.pop_coldest().is_none());
        let a = l.insert(k("a"));
        l.insert(k("b"));
        assert_eq!(order(&l), ["a", "b"]);
        l.touch(a);
        assert_eq!(l.pop_coldest().unwrap().as_str(), "b");
    }

    #[test]
    fn insert_orders_coldest_first() {
        let mut l = SlotLru::new();
        for name in ["k0", "k1", "k2"] {
            l.insert(k(name));
        }
        assert_eq!(order(&l), ["k0", "k1", "k2"]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.coldest().unwrap().as_str(), "k0");
    }

    #[test]
    fn touch_promotes_to_hot_end() {
        let mut l = SlotLru::new();
        let s0 = l.insert(k("k0"));
        l.insert(k("k1"));
        l.insert(k("k2"));
        l.touch(s0);
        assert_eq!(order(&l), ["k1", "k2", "k0"]);
        // Touching the hottest slot is a no-op.
        l.touch(s0);
        assert_eq!(order(&l), ["k1", "k2", "k0"]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn evict_order_is_lru() {
        let mut o = Owner::default();
        for name in ["k0", "k1", "k2", "k3"] {
            assert!(o.touch(name));
        }
        assert!(!o.touch("k1"));
        assert_eq!(o.pop_coldest().unwrap(), "k0");
        assert_eq!(o.pop_coldest().unwrap(), "k2");
        assert_eq!(o.pop_coldest().unwrap(), "k3");
        assert_eq!(o.pop_coldest().unwrap(), "k1");
        assert!(o.pop_coldest().is_none());
        assert!(o.lru.is_empty());
        assert!(o.slots.is_empty());
    }

    #[test]
    fn remove_unlinks_from_any_position_and_reuses_slots() {
        let mut o = Owner::default();
        for name in ["k0", "k1", "k2", "k3", "k4"] {
            o.touch(name);
        }
        assert!(o.remove("k0")); // head
        assert!(o.remove("k2")); // middle
        assert!(o.remove("k4")); // tail
        assert!(!o.remove("k4"));
        assert_eq!(order(&o.lru), ["k1", "k3"]);
        o.touch("k7");
        o.touch("k8");
        o.touch("k9");
        assert_eq!(order(&o.lru), ["k1", "k3", "k7", "k8", "k9"]);
        assert_eq!(o.lru.slab.len(), 5, "slab must reuse freed slots");
    }

    #[test]
    fn removed_slots_release_their_key() {
        let mut l = SlotLru::new();
        let slot = l.insert(k("lru:transient"));
        let removed = l.remove(slot);
        assert_eq!(removed.as_str(), "lru:transient");
        // The freed slab node must not pin the real key alive.
        assert_eq!(l.slab[slot as usize].key.as_str(), "");
    }

    #[test]
    fn clear_resets_but_list_remains_usable() {
        let mut l = SlotLru::new();
        for name in ["k0", "k1", "k2"] {
            l.insert(k(name));
        }
        l.clear();
        assert!(l.is_empty());
        assert!(l.coldest().is_none());
        l.insert(k("k9"));
        assert_eq!(order(&l), ["k9"]);
    }

    #[test]
    fn interleaved_churn_keeps_owner_and_list_consistent() {
        let mut o = Owner::default();
        for round in 0..100usize {
            let name = format!("k{}", round % 17);
            if round % 5 == 0 {
                o.remove(&name);
            } else {
                o.touch(&name);
            }
            // Owner map and list agree at every step.
            assert_eq!(o.lru.iter_coldest_first().count(), o.lru.len());
            assert_eq!(o.slots.len(), o.lru.len());
            for key in o.lru.iter_coldest_first() {
                assert!(o.slots.contains_key(key.as_str()));
            }
        }
    }
}

//! Retwis (paper §6.3.2): a Twitter clone as six Cloudburst functions,
//! running under **distributed session causal consistency** so a timeline
//! never shows a reply without the tweet it responds to.
//!
//! Run with `cargo run --release --example retwis`.

use cloudburst::cluster::{CloudburstCluster, CloudburstConfig};
use cloudburst::types::ConsistencyLevel;
use cloudburst_apps::retwis::{Retwis, RetwisConfig};

fn main() {
    let config = CloudburstConfig {
        level: ConsistencyLevel::DistributedSessionCausal,
        vms: 3,
        ..CloudburstConfig::default()
    };
    let cluster = CloudburstCluster::launch(config);
    let client = cluster.client();

    Retwis::register(&client).unwrap();
    let app = Retwis::new(RetwisConfig {
        users: 50,
        follows_per_user: 8,
        initial_tweets: 200,
        ..RetwisConfig::default()
    });
    println!("seeding 50 users / 200 tweets…");
    app.seed(&client).unwrap();

    // A conversation: the reply causally depends on the original tweet.
    Retwis::post_tweet(&client, 1, "t-kappa", "what comes after kappa?", None).unwrap();
    Retwis::post_tweet(&client, 2, "t-lambda", "lambda!", Some("t-kappa")).unwrap();

    let mut total_tweets = 0;
    let mut total_anomalies = 0;
    for user in 0..10 {
        let tl = Retwis::get_timeline(&client, user).unwrap();
        println!(
            "user {user}: timeline has {} tweets ({} causal anomalies)",
            tl.tweets, tl.anomalies
        );
        total_tweets += tl.tweets;
        total_anomalies += tl.anomalies;
    }
    println!("total: {total_tweets} tweets rendered, {total_anomalies} anomalies");
    println!("(causal mode: replies are never visible before their parents)");
}

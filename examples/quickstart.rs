//! Quickstart: the Rust analogue of the paper's Figure 2 client script.
//!
//! ```text
//! cloud.put('key', 2)
//! reference = CloudburstReference('key')
//! sq = cloud.register(sqfun, name='square')
//! print(sq(reference))          # => 4   (direct response)
//! future = sq(3, store_in_kvs=True)
//! print(future.get())           # => 9   (KVS-backed future)
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use std::collections::HashMap;
use std::time::Duration;

use cloudburst::cluster::{CloudburstCluster, CloudburstConfig};
use cloudburst::codec;
use cloudburst::dag::DagSpec;
use cloudburst::types::Arg;

fn main() {
    // Launch a local simulated deployment: Anna storage nodes + VMs with
    // co-located caches + a scheduler.
    let cluster = CloudburstCluster::launch(CloudburstConfig::default());
    let cloud = cluster.client();

    // cloud.put('key', 2)
    cloud.put("key", codec::encode_i64(2)).unwrap();

    // sq = cloud.register(sqfun, name='square')
    cloud
        .register_function("square", |_rt, args| {
            let x = codec::decode_i64(&args[0]).ok_or("expected an i64")?;
            Ok(codec::encode_i64(x * x))
        })
        .unwrap();
    cloud
        .register_dag(DagSpec::linear("square-dag", &["square"]))
        .unwrap();

    // print('result: %d' % sq(reference)) — KVS reference argument, direct
    // response.
    let result = cloud
        .call_dag(
            "square-dag",
            HashMap::from([(0, vec![Arg::reference("key")])]),
        )
        .unwrap()
        .unwrap();
    println!("result: {}", codec::decode_i64(&result).unwrap()); // result: 4

    // future = sq(3, store_in_kvs=True); print(future.get())
    let future = cloud
        .call_dag_stored(
            "square-dag",
            HashMap::from([(0, vec![Arg::value(codec::encode_i64(3))])]),
        )
        .unwrap();
    let stored = future.get(Duration::from_secs(10)).unwrap();
    println!("result: {}", codec::decode_i64(&stored).unwrap()); // result: 9

    // Stateful functions: Table 1's get/put from inside a function.
    cloud
        .register_function("counter", |rt, _args| {
            let key = cloudburst_lattice::Key::new("visits");
            let n = rt
                .get(&key)
                .and_then(|b| codec::decode_i64(&b))
                .unwrap_or(0);
            rt.put(&key, codec::encode_i64(n + 1));
            Ok(codec::encode_i64(n + 1))
        })
        .unwrap();
    for _ in 0..3 {
        let r = cloud.call_function("counter", vec![]).unwrap().unwrap();
        println!("visits: {}", codec::decode_i64(&r).unwrap());
    }
}

//! Distributed aggregation (paper §6.1.3): the Kempe et al. push-sum gossip
//! protocol running over Cloudburst's direct executor-to-executor messaging
//! (`send`/`recv` of Table 1) — the workload that is "infeasibly slow" on
//! FaaS platforms without direct communication.
//!
//! Run with `cargo run --release --example gossip_aggregation`.

use cloudburst::cluster::{CloudburstCluster, CloudburstConfig};
use cloudburst_apps::gossip::{register_gossip, run_gossip, GossipConfig};

fn main() {
    let config = CloudburstConfig {
        vms: 4,
        executors_per_vm: 3, // 12 threads for 10 actors, as in §6.1.3
        ..CloudburstConfig::default()
    };
    let cluster = CloudburstCluster::launch(config);
    let client = cluster.client();
    register_gossip(&client).unwrap();

    // Ten actors, each holding one local metric; gossip converges every
    // actor's estimate to the global mean without any central coordinator.
    let values: Vec<f64> = (0..10).map(|i| 50.0 + 10.0 * i as f64).collect();
    println!("actor metrics: {values:?}");
    let result = run_gossip(
        &cluster,
        &values,
        GossipConfig {
            actors: 10,
            rounds: 30,
            run_id: 42,
            round_wait_ms: 2.0,
        },
    )
    .expect("gossip run failed");

    println!("true mean: {}", result.true_mean);
    for (i, estimate) in result.estimates.iter().enumerate() {
        println!("actor {i}: estimate {estimate:.3}");
    }
    println!(
        "converged within 5%: {} (elapsed {:?})",
        result.converged(0.05),
        result.elapsed
    );
}

//! Prediction serving (paper §6.3.1): the three-stage pipeline —
//! resize → model → combine — served from Cloudburst with the model weights
//! stored in Anna and cached next to the executors.
//!
//! Run with `cargo run --release --example prediction_serving`.

use bytes::Bytes;
use cloudburst::cluster::{CloudburstCluster, CloudburstConfig};
use cloudburst::types::ConsistencyLevel;
use cloudburst_apps::prediction::PredictionPipeline;
use cloudburst_net::TimeScale;

fn main() {
    let config = CloudburstConfig {
        level: ConsistencyLevel::Lww,
        vms: 1,
        executors_per_vm: 3, // the paper's 3-worker deployment
        ..CloudburstConfig::default()
    };
    let cluster = CloudburstCluster::launch(config);
    let client = cluster.client();

    // A 2 MB synthetic MobileNet stored in Anna; executors fetch it once and
    // serve subsequent requests from the co-located cache.
    let pipeline = PredictionPipeline::new("model/mobilenet-v1", 2 << 20);
    pipeline.seed_model(&client).unwrap();
    pipeline.register(&client).unwrap();

    let scale = TimeScale::DEFAULT;
    println!("serving 10 predictions…");
    for i in 0..10 {
        let image = Bytes::from(vec![i as u8; 32 << 10]);
        let (latency, label) = pipeline.call(&client, image).unwrap();
        println!(
            "request {i}: label={label}  latency={:.1} paper-ms",
            scale.to_paper_ms(latency)
        );
    }
    println!("(first request pays the model fetch; the rest hit the VM cache)");
}

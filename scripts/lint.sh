#!/usr/bin/env bash
# cb-lint: token-level concurrency linter for the whole workspace.
# See crates/lint/src/main.rs for the rule set (L001–L005) and escape
# syntax. Exit 0 = clean, 1 = violations, 2 = usage/IO error.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q -p lint -- "$@"

#!/usr/bin/env bash
# Perf-regression gate for the hot-path microbenchmarks.
#
# Compares a fresh `cargo run --release --bin hotpath -- --quick` run against
# the committed BENCH_hotpath.json: every committed bench must appear in the
# fresh run, and its speedup ratio must not fall below
# (1 - BENCH_TOLERANCE) x the committed ratio (default tolerance 30%).
# Speedup *ratios* are compared, never absolute ops/sec, so the gate is
# meaningful across machines of different raw speed.
#
# Usage: scripts/check_bench.sh <committed.json> <fresh.json>
set -euo pipefail

committed="${1:?usage: check_bench.sh <committed.json> <fresh.json>}"
fresh="${2:?usage: check_bench.sh <committed.json> <fresh.json>}"
tolerance="${BENCH_TOLERANCE:-0.30}"

python3 - "$committed" "$fresh" "$tolerance" <<'PYEOF'
import json
import sys

committed_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
committed = {b["name"]: b for b in json.load(open(committed_path))["benches"]}
fresh = {b["name"]: b for b in json.load(open(fresh_path))["benches"]}

missing = sorted(set(committed) - set(fresh))
if missing:
    sys.exit(f"FAIL: benches missing from the fresh run: {missing}")

failures = []
print(f"{'bench':<22} {'committed':>9} {'fresh':>9} {'floor':>9}  status")
for name, ref in sorted(committed.items()):
    got = fresh[name]["speedup"]
    floor = ref["speedup"] * (1.0 - tolerance)
    ok = got >= floor
    print(f"{name:<22} {ref['speedup']:>8.2f}x {got:>8.2f}x {floor:>8.2f}x  "
          f"{'ok' if ok else 'REGRESSION'}")
    if not ok:
        failures.append(name)

if failures:
    sys.exit(f"FAIL: speedup regressions beyond {tolerance:.0%} tolerance: {failures}")
print(f"bench gate passed ({len(committed)} benches within {tolerance:.0%} tolerance)")
PYEOF

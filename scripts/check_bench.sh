#!/usr/bin/env bash
# Perf-regression gate for the hot-path microbenchmarks.
#
# Compares a fresh `cargo run --release --bin hotpath -- --quick` run against
# the committed BENCH_hotpath.json:
#   1. every bench in REQUIRED_BENCHES must appear in BOTH files — a bench
#      silently dropped from the suite (or never committed) fails the gate;
#   2. every committed bench must appear in the fresh run, and every fresh
#      bench must be registered in the committed file (no unregistered
#      benches riding along un-gated);
#   3. each bench's fresh speedup ratio must not fall below
#      (1 - BENCH_TOLERANCE) x the committed ratio (default tolerance 30%);
#   4. a committed "min_speedup" is an *absolute* floor the fresh ratio must
#      clear regardless of tolerance (acceptance-criterion wins, e.g.
#      dag_dispatch >= 1.5x).
# Speedup *ratios* are compared, never absolute ops/sec, so the gate is
# meaningful across machines of different raw speed.
#
# Usage: scripts/check_bench.sh <committed.json> <fresh.json>
set -euo pipefail

committed="${1:?usage: check_bench.sh <committed.json> <fresh.json>}"
fresh="${2:?usage: check_bench.sh <committed.json> <fresh.json>}"
tolerance="${BENCH_TOLERANCE:-0.30}"

# The registry: benches the gate insists on, selected by the committed
# file's suite (override with REQUIRED_BENCHES). Adding a bench to a suite
# means adding it here (and committing its JSON entry), or the gate fails.
case "$(basename "$committed")" in
  *skew*) default_required="skew" ;;
  *geo*) default_required="geo_local_reads geo_wan_p99 geo_throughput" ;;
  *parallel*) default_required="parallel_fetch parallel_replicated_put parallel_dag parallel_aggregate" ;;
  *recovery*) default_required="recovery_replay cold_read_bloom" ;;
  *runtime*) default_required="runtime_kvs runtime_invoke runtime_timer runtime_aggregate" ;;
  *) default_required="cache_hit cache_hit_causal store_merge cache_to_cache_fetch fetch_batched gossip_batched dag_dispatch singleflight_fill" ;;
esac
required="${REQUIRED_BENCHES:-$default_required}"

python3 - "$committed" "$fresh" "$tolerance" "$required" <<'PYEOF'
import json
import sys

committed_path, fresh_path, tolerance, required = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), sys.argv[4].split())
committed = {b["name"]: b for b in json.load(open(committed_path))["benches"]}
fresh = {b["name"]: b for b in json.load(open(fresh_path))["benches"]}

unregistered = sorted(set(required) - set(committed))
if unregistered:
    sys.exit(f"FAIL: required benches missing from the committed JSON "
             f"(regenerate and commit it): {unregistered}")
dropped = sorted((set(committed) | set(required)) - set(fresh))
if dropped:
    sys.exit(f"FAIL: benches missing from the fresh run: {dropped}")
rogue = sorted(set(fresh) - set(committed))
if rogue:
    sys.exit(f"FAIL: fresh benches not registered in the committed JSON "
             f"(commit their entries so they are gated): {rogue}")

failures = []
print(f"{'bench':<22} {'committed':>9} {'fresh':>9} {'floor':>9}  status")
for name, ref in sorted(committed.items()):
    got = fresh[name]["speedup"]
    floor = ref["speedup"] * (1.0 - tolerance)
    if "min_speedup" in ref:
        floor = max(floor, ref["min_speedup"])
    ok = got >= floor
    print(f"{name:<22} {ref['speedup']:>8.2f}x {got:>8.2f}x {floor:>8.2f}x  "
          f"{'ok' if ok else 'REGRESSION'}")
    if not ok:
        failures.append(name)

if failures:
    sys.exit(f"FAIL: speedup regressions beyond {tolerance:.0%} tolerance "
             f"(or below an absolute min_speedup floor): {failures}")
print(f"bench gate passed ({len(committed)} benches within {tolerance:.0%} tolerance)")
PYEOF

//! A minimal, API-compatible subset of `crossbeam`, vendored because this
//! build environment has no crates.io access. Only the [`channel`] module is
//! provided (that is all the workspace uses).

#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels mirroring
    //! `crossbeam::channel`.
    //!
    //! Implemented as a `Mutex<VecDeque>` + `Condvar`. The workspace's
    //! message rates are bounded by injected network latencies, so a
    //! lock-based queue is not the bottleneck; what matters is API
    //! compatibility (cloneable receivers, `recv_timeout`) which
    //! `std::sync::mpsc` cannot provide.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error for sends on a channel with no remaining receivers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error for `recv` on an empty, sender-less channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error for `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (messages go to whichever receiver pops
    /// first).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Create a "bounded" channel. This stand-in does not implement
    /// backpressure — the capacity is accepted for API compatibility and the
    /// queue grows as needed (the workspace only uses `bounded(1)` for
    /// single-shot reply channels, which never exceed their capacity).
    pub fn bounded<T>(_capacity: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.chan.lock().push_back(value);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .chan
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.chan.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, res) = self
                    .chan
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
                if res.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Pop a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.chan.lock();
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.chan.lock().is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn timeout_fires() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
                RecvTimeoutError::Timeout
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
                RecvTimeoutError::Disconnected
            );
        }

        #[test]
        fn disconnect_on_drop_of_all_senders() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv().unwrap(), 1);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9).unwrap_err(), SendError(9));
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(5));
            tx.send(42u64).unwrap();
            assert_eq!(h.join().unwrap(), 42);
        }
    }
}

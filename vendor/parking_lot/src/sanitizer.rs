//! The `CB_SANITIZE` lock-order sanitizer.
//!
//! Every ranked [`crate::Mutex`]/[`crate::RwLock`] acquisition flows through
//! here. The sanitizer keeps a **thread-local stack of held locks** and a
//! **global acquisition-order graph** (edges `a → b` = "b was acquired while
//! a was held", stamped with the first call site that established the order).
//! A blocking acquisition that contradicts the declared rank order — or that
//! closes a cycle in the graph — panics immediately with *both* sites: the
//! acquire being attempted and the previously recorded opposite order. A
//! would-be ABBA deadlock therefore surfaces as a readable panic in whichever
//! thread closes the cycle first, instead of a CI hang.
//!
//! Modes (chosen once per process from the `CB_SANITIZE` environment
//! variable, read at the first lock acquisition):
//!
//! * unset / `0` / `off` — **Off**: one relaxed atomic load per acquisition,
//!   nothing else.
//! * `1` / `on` / `check` — **Check**: enforce; panic on violations.
//! * `observe` — **Observe**: print each newly discovered ordering edge and
//!   every would-be violation to stderr, but never panic. Used to derive or
//!   audit the rank table in `ARCHITECTURE.md`.
//!
//! Unranked locks (constructed with `new` rather than `ranked`) do not
//! participate: they are invisible to both the stack and the graph. The
//! workspace lint (rule L002) forces every long-lived lock field to carry a
//! `// lock-rank:` annotation, which keeps the interesting locks ranked.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex as StdMutex;

/// Sentinel rank for locks constructed without a declared rank.
pub(crate) const UNRANKED: u16 = u16::MAX;

const MODE_UNINIT: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_CHECK: u8 = 2;
const MODE_OBSERVE: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

#[inline]
fn mode() -> u8 {
    match MODE.load(Ordering::Relaxed) {
        MODE_UNINIT => init_mode(),
        m => m,
    }
}

#[cold]
fn init_mode() -> u8 {
    let m = match std::env::var("CB_SANITIZE").as_deref() {
        Ok("1") | Ok("on") | Ok("check") => MODE_CHECK,
        Ok("observe") => MODE_OBSERVE,
        _ => MODE_OFF,
    };
    // A concurrent initializer may race us; both compute the same value
    // because the environment variable is stable for the process lifetime.
    MODE.store(m, Ordering::Relaxed);
    m
}

/// Whether the sanitizer is enforcing (`CB_SANITIZE=1`). Tests use this to
/// gate sanitizer-specific assertions.
pub fn sanitizer_active() -> bool {
    mode() == MODE_CHECK
}

/// Whether the sanitizer is recording orders without enforcing
/// (`CB_SANITIZE=observe`).
pub fn sanitizer_observing() -> bool {
    mode() == MODE_OBSERVE
}

/// One lock currently held by this thread.
#[derive(Clone, Copy)]
struct HeldLock {
    rank: u16,
    name: &'static str,
    lock_id: usize,
    exclusive: bool,
    site: &'static Location<'static>,
    seq: u64,
}

thread_local! {
    static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
    static NEXT_SEQ: RefCell<u64> = const { RefCell::new(0) };
}

/// The acquisition-order graph: `edges[a][b]` = first site that acquired
/// ranked lock `b` while ranked lock `a` was held. Keyed by lock *name*, so
/// the order generalizes over instances (every stripe of a striped lock
/// shares one node). Guarded by a `std` mutex — the sanitizer must not
/// recurse into its own instrumented locks.
static GRAPH: StdMutex<Option<Graph>> = StdMutex::new(None);

#[derive(Default)]
struct Graph {
    edges: HashMap<&'static str, HashMap<&'static str, &'static Location<'static>>>,
}

impl Graph {
    /// Record `from → to` if new; returns the site of the first recording.
    fn record(
        &mut self,
        from: &'static str,
        to: &'static str,
        site: &'static Location<'static>,
    ) -> (bool, &'static Location<'static>) {
        let slot = self.edges.entry(from).or_default().entry(to);
        match slot {
            std::collections::hash_map::Entry::Occupied(e) => (false, e.get()),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(site);
                (true, site)
            }
        }
    }

    fn site_of(&self, from: &str, to: &str) -> Option<&'static Location<'static>> {
        self.edges.get(from)?.get(to).copied()
    }

    /// Depth-first reachability: is `to` reachable from `from`?
    fn reaches(&self, from: &str, to: &str) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if let Some(next) = self.edges.get(n) {
                for m in next.keys() {
                    if !seen.contains(m) {
                        seen.push(m);
                        stack.push(m);
                    }
                }
            }
        }
        false
    }
}

/// Guard token held by a lock guard for the lifetime of the acquisition.
/// Dropping it (or pausing it around a condvar wait) removes the lock from
/// the thread's held stack.
pub(crate) struct Token {
    /// `None` when the sanitizer is off or the lock is unranked.
    entry: Option<HeldLock>,
    /// Whether the entry is currently on the held stack (false while paused
    /// across a condvar wait).
    active: bool,
}

impl Token {
    pub(crate) const INERT: Token = Token {
        entry: None,
        active: false,
    };

    /// Remove this lock from the held stack for the duration of a condvar
    /// wait (the underlying lock is released while waiting).
    pub(crate) fn pause(&mut self) {
        if let Some(entry) = self.entry {
            if self.active {
                self.active = false;
                pop_entry(entry.seq);
            }
        }
    }

    /// Re-register after a condvar wait re-acquired the lock. Re-runs the
    /// order check: the set of locks held around the wait may differ.
    pub(crate) fn unpause(&mut self) {
        if let Some(entry) = self.entry {
            if !self.active {
                check_order(
                    entry.rank,
                    entry.name,
                    entry.lock_id,
                    entry.exclusive,
                    entry.site,
                );
                push_entry(entry);
                self.active = true;
            }
        }
    }
}

impl Drop for Token {
    fn drop(&mut self) {
        self.pause();
    }
}

fn push_entry(entry: HeldLock) {
    // `try_with`: guards may drop during thread-local teardown.
    let _ = HELD.try_with(|held| held.borrow_mut().push(entry));
}

fn pop_entry(seq: u64) {
    let _ = HELD.try_with(|held| {
        let mut held = held.borrow_mut();
        // Guards can drop out of acquisition order; remove by identity.
        if let Some(pos) = held.iter().rposition(|h| h.seq == seq) {
            held.remove(pos);
        }
    });
}

/// Record the acquisition of a ranked lock. `blocking` acquisitions are
/// checked against the held stack *before* the caller blocks on the real
/// lock (so an ABBA panics rather than hangs); non-blocking (`try_*`)
/// acquisitions cannot deadlock themselves and skip the check, but the
/// returned hold still participates in later checks.
#[track_caller]
pub(crate) fn acquire(
    rank: u16,
    name: &'static str,
    lock_id: usize,
    exclusive: bool,
    blocking: bool,
) -> Token {
    if mode() == MODE_OFF || rank == UNRANKED {
        return Token::INERT;
    }
    let site = Location::caller();
    if blocking {
        check_order(rank, name, lock_id, exclusive, site);
    }
    record_edges(rank, name, site);
    let seq = NEXT_SEQ.with(|s| {
        let mut s = s.borrow_mut();
        *s += 1;
        *s
    });
    let entry = HeldLock {
        rank,
        name,
        lock_id,
        exclusive,
        site,
        seq,
    };
    push_entry(entry);
    Token {
        entry: Some(entry),
        active: true,
    }
}

/// The rank-order check: every ranked lock already held must have a strictly
/// lower rank than the one being acquired. Re-acquiring the same lock is a
/// guaranteed self-deadlock unless both sides are shared reads.
fn check_order(
    rank: u16,
    name: &'static str,
    lock_id: usize,
    exclusive: bool,
    site: &'static Location<'static>,
) {
    let held_snapshot: Vec<HeldLock> = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
    for held in &held_snapshot {
        if held.lock_id == lock_id {
            if exclusive || held.exclusive {
                violation(&format!(
                    "[cb-sanitize] self-deadlock: re-acquiring \"{name}\" (rank {rank}) at \
                     {site} while already held (acquired at {})",
                    held.site
                ));
            }
            continue; // shared read re-entry is legal
        }
        if held.rank >= rank {
            let opposite = GRAPH
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .and_then(|g| g.site_of(name, held.name))
                .map(|s| {
                    format!(
                        "; the opposite order \"{name}\" -> \"{}\" was first recorded at {s}",
                        held.name
                    )
                })
                .unwrap_or_default();
            violation(&format!(
                "[cb-sanitize] lock-order inversion: acquiring \"{name}\" (rank {rank}) at \
                 {site} while holding \"{}\" (rank {}) acquired at {}{opposite}",
                held.name, held.rank, held.site
            ));
        }
    }
}

/// Record `held → new` edges for every ranked lock currently held, and fail
/// on any edge that closes a cycle in the global graph.
fn record_edges(rank: u16, name: &'static str, site: &'static Location<'static>) {
    let held_snapshot: Vec<HeldLock> = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
    if held_snapshot.is_empty() {
        return;
    }
    let mut graph = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
    let graph = graph.get_or_insert_with(Graph::default);
    for held in &held_snapshot {
        if held.name == name {
            continue;
        }
        // A cycle exists if the new lock already precedes the held one.
        if graph.reaches(name, held.name) {
            let opposite = graph
                .site_of(name, held.name)
                .map(|s| format!(" (direct opposite edge first recorded at {s})"))
                .unwrap_or_default();
            drop_violation_with_graph(&format!(
                "[cb-sanitize] acquisition-order cycle: acquiring \"{name}\" (rank {rank}) at \
                 {site} while holding \"{}\" (rank {}) acquired at {} closes a cycle \
                 \"{name}\" -> ... -> \"{}\" -> \"{name}\"{opposite}",
                held.name, held.rank, held.site, held.name
            ));
        }
        let (new_edge, _) = graph.record(held.name, name, site);
        if new_edge && mode() == MODE_OBSERVE {
            eprintln!(
                "[cb-sanitize] order: \"{}\" (rank {}) -> \"{name}\" (rank {rank}) at {site}",
                held.name, held.rank
            );
        }
    }
}

/// Report a violation found while the graph lock is held (observe mode must
/// not panic, and must not deadlock on re-reporting).
fn drop_violation_with_graph(msg: &str) {
    if mode() == MODE_OBSERVE {
        eprintln!("{msg} [observe: not panicking]");
    } else {
        panic!("{msg}");
    }
}

fn violation(msg: &str) {
    if mode() == MODE_OBSERVE {
        eprintln!("{msg} [observe: not panicking]");
    } else {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Mode-dependent behaviour is exercised in `tests/sanitize.rs` (its own
    // process sets CB_SANITIZE before the first acquisition). Here we unit
    // test the graph machinery, which is mode-independent.

    #[test]
    fn graph_records_first_site_and_detects_reachability() {
        let mut g = Graph::default();
        let site = Location::caller();
        let (new, s) = g.record("a", "b", site);
        assert!(new);
        assert_eq!(s.line(), site.line());
        let (new2, s2) = g.record("a", "b", Location::caller());
        assert!(!new2, "second recording is not a new edge");
        assert_eq!(s2.line(), site.line(), "first site is kept");
        g.record("b", "c", site);
        assert!(g.reaches("a", "c"), "a -> b -> c");
        assert!(!g.reaches("c", "a"));
        // Closing c -> a would create a cycle: reachability from a to c is
        // exactly the check `record_edges` performs before inserting.
        assert!(g.reaches("a", "c"));
    }

    #[test]
    fn graph_site_lookup() {
        let mut g = Graph::default();
        assert!(g.site_of("x", "y").is_none());
        let site = Location::caller();
        g.record("x", "y", site);
        assert_eq!(g.site_of("x", "y").map(|s| s.line()), Some(site.line()));
    }
}

//! A minimal, API-compatible subset of `parking_lot`, vendored because this
//! build environment has no crates.io access.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a poisoned
//! lock is recovered rather than propagated — a panic while holding a lock in
//! one test thread must not cascade.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, PoisonError};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns `Err`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` never return `Err`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable mirroring `parking_lot::Condvar` — waits take the
/// guard by `&mut` rather than by value.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block on the condvar, releasing the guarded lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Block with a timeout; reports whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Run a guard-consuming wait through a `&mut` slot. std's condvar takes
    /// the guard by value, so the slot is vacated and refilled around the
    /// wait; `f` must return a guard for the same mutex (both callers above
    /// do), and the wait paths cannot unwind between the two moves because
    /// poisoning is recovered, not propagated.
    fn replace_guard<'a, T>(
        &self,
        slot: &mut MutexGuard<'a, T>,
        f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
    ) {
        unsafe {
            let guard = std::ptr::read(slot);
            let guard = f(guard);
            std::ptr::write(slot, guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

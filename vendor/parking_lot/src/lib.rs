//! A minimal, API-compatible subset of `parking_lot`, vendored because this
//! build environment has no crates.io access.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a poisoned
//! lock is recovered rather than propagated — a panic while holding a lock in
//! one test thread must not cascade.
//!
//! # The lock-order sanitizer
//!
//! Because every lock in the workspace is one of these types (lint rule L001
//! bans `std::sync::{Mutex, RwLock}` in product crates), this crate is the
//! single choke point through which every acquisition flows — and that is
//! where the **`CB_SANITIZE` deadlock sanitizer** lives. Long-lived locks
//! declare their place in the global lock hierarchy at construction:
//!
//! ```
//! use parking_lot::Mutex;
//! // lock-rank: 40 cache-shard
//! let shard: Mutex<Vec<u8>> = Mutex::ranked(40, "cache-shard", Vec::new());
//! ```
//!
//! Under `CB_SANITIZE=1` every blocking acquisition checks the thread's
//! held-lock stack (ranks must strictly increase), records the global
//! acquisition-order graph, and panics with both offending call sites on any
//! rank inversion or order cycle. `CB_SANITIZE=observe` prints each newly
//! observed ordering edge instead of panicking — the tool used to derive the
//! rank table documented in `ARCHITECTURE.md` ("Lock hierarchy"). With the
//! variable unset the sanitizer costs one relaxed atomic load per
//! acquisition.
//!
//! Locks constructed with [`Mutex::new`] / [`RwLock::new`] are *unranked*
//! and invisible to the sanitizer — appropriate for short-lived locals and
//! test fixtures, and enforced to be the exception by lint rule L002.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

mod sanitizer;

pub use sanitizer::{sanitizer_active, sanitizer_observing};

use sanitizer::{Token, UNRANKED};

/// Guard for [`Mutex::lock`]. Releases the lock — and pops the sanitizer's
/// held-lock stack — on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // Declared before `inner` so the sanitizer entry is popped before the
    // lock is actually released.
    token: Token,
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// Guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    // Held for its Drop (pops the sanitizer's held-lock stack).
    #[allow(dead_code)]
    token: Token,
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// Guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    // Held for its Drop (pops the sanitizer's held-lock stack).
    #[allow(dead_code)]
    token: Token,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// A mutual-exclusion lock whose `lock` never returns `Err`.
pub struct Mutex<T: ?Sized> {
    rank: u16,
    name: &'static str,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create an **unranked** mutex holding `value` — invisible to the
    /// lock-order sanitizer. Use for short-lived locals and tests; long-lived
    /// locks should declare their hierarchy position via [`Mutex::ranked`].
    pub const fn new(value: T) -> Self {
        Self {
            rank: UNRANKED,
            name: "<unranked>",
            inner: sync::Mutex::new(value),
        }
    }

    /// Create a mutex at position `rank` (strictly increasing along any
    /// acquisition chain) named `name` in the global lock hierarchy. The
    /// rank/name pair must match the `// lock-rank:` annotation on the
    /// field holding this lock and the table in `ARCHITECTURE.md`.
    pub const fn ranked(rank: u16, name: &'static str, value: T) -> Self {
        Self {
            rank,
            name,
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn lock_id(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquire the lock, blocking until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = sanitizer::acquire(self.rank, self.name, self.lock_id(), true, true);
        MutexGuard {
            token,
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire the lock without blocking. A `try_lock` cannot
    /// deadlock by itself, so it skips the sanitizer's rank check — but the
    /// hold it returns still participates in checks on later acquisitions.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let token = sanitizer::acquire(self.rank, self.name, self.lock_id(), true, false);
        Some(MutexGuard { token, inner })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` never return `Err`.
pub struct RwLock<T: ?Sized> {
    rank: u16,
    name: &'static str,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create an **unranked** lock holding `value` — invisible to the
    /// lock-order sanitizer (see [`Mutex::new`]).
    pub const fn new(value: T) -> Self {
        Self {
            rank: UNRANKED,
            name: "<unranked>",
            inner: sync::RwLock::new(value),
        }
    }

    /// Create a lock at position `rank` named `name` in the global lock
    /// hierarchy (see [`Mutex::ranked`]).
    pub const fn ranked(rank: u16, name: &'static str, value: T) -> Self {
        Self {
            rank,
            name,
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    fn lock_id(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquire a shared read guard. Shared re-entry on the same lock is
    /// permitted by the sanitizer; everything else follows the rank rules.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = sanitizer::acquire(self.rank, self.name, self.lock_id(), false, true);
        RwLockReadGuard {
            token,
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = sanitizer::acquire(self.rank, self.name, self.lock_id(), true, true);
        RwLockWriteGuard {
            token,
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable mirroring `parking_lot::Condvar` — waits take the
/// guard by `&mut` rather than by value.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block on the condvar, releasing the guarded lock while waiting. The
    /// sanitizer's held-lock entry is paused for the duration of the wait
    /// (the lock is not held) and re-checked on wakeup.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        guard.token.pause();
        self.replace_guard(&mut guard.inner, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
        guard.token.unpause();
    }

    /// Block with a timeout; reports whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        guard.token.pause();
        self.replace_guard(&mut guard.inner, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        guard.token.unpause();
        WaitTimeoutResult(timed_out)
    }

    /// Run a guard-consuming wait through a `&mut` slot. std's condvar takes
    /// the guard by value, so the slot is vacated and refilled around the
    /// wait; `f` must return a guard for the same mutex (both callers above
    /// do), and the wait paths cannot unwind between the two moves because
    /// poisoning is recovered, not propagated.
    fn replace_guard<'a, T>(
        &self,
        slot: &mut sync::MutexGuard<'a, T>,
        f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
    ) {
        unsafe {
            let guard = std::ptr::read(slot);
            let guard = f(guard);
            std::ptr::write(slot, guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn ranked_mutex_roundtrip() {
        let m = Mutex::ranked(10, "test-ranked", 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
    }

    #[test]
    fn ranked_rwlock_shared_reentry() {
        // Shared read re-entry on one lock is legal even when ranked.
        let l = RwLock::ranked(10, "test-rw", 7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

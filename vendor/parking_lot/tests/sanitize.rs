//! Negative tests for the `CB_SANITIZE` lock-order sanitizer: seeded rank
//! inversions and self-deadlocks must surface as readable panics carrying
//! both acquisition sites — **not** as hangs.
//!
//! This integration binary turns the sanitizer on for itself by setting
//! `CB_SANITIZE=1` before the first lock acquisition (the mode is latched
//! process-wide at first use). It therefore exercises the enforcement paths
//! even when the surrounding `cargo test` run is not sanitized.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{sanitizer_active, Condvar, Mutex, RwLock};

/// Latch Check mode before the first acquisition in this process. Every test
/// calls this first, so whichever runs first initializes the mode to Check.
fn enable() {
    std::env::set_var("CB_SANITIZE", "1");
    assert!(sanitizer_active(), "CB_SANITIZE=1 must enable enforcement");
}

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic>".into())
}

#[test]
fn consistent_order_is_silent() {
    enable();
    let a = Mutex::ranked(10, "t-consistent-a", 0u32);
    let b = Mutex::ranked(20, "t-consistent-b", 0u32);
    for _ in 0..3 {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }
}

#[test]
fn seeded_abba_inversion_panics_with_both_sites() {
    enable();
    let a = Arc::new(Mutex::ranked(110, "t-abba-low", 0u32));
    let b = Arc::new(Mutex::ranked(120, "t-abba-high", 0u32));

    // Thread 1 takes the declared order low -> high, recording the edge
    // "t-abba-low" -> "t-abba-high" in the global acquisition graph.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let ga = a.lock();
            let gb = b.lock(); // <- the site the inversion report must cite
            drop(gb);
            drop(ga);
        })
        .join()
        .expect("declared order must not panic");
    }

    // Thread 2 seeds the ABBA: high first, then low. The sanitizer must
    // panic on the second acquisition — before blocking — rather than hang.
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let result = std::thread::Builder::new()
        .name("abba-seeder".into())
        .spawn(move || {
            let gb = b2.lock();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _ga = a2.lock(); // inversion: rank 110 under rank 120
            }))
            .expect_err("inverted acquisition must panic");
            drop(gb);
            panic_message(err)
        })
        .unwrap()
        .join()
        .expect("the panic is caught inside the thread");

    assert!(
        result.contains("lock-order inversion"),
        "unexpected message: {result}"
    );
    assert!(
        result.contains("t-abba-low") && result.contains("t-abba-high"),
        "both lock names must be cited: {result}"
    );
    // Both sites: the acquiring site (this file) and the first-recorded
    // opposite-order site (also this file, from thread 1).
    assert!(
        result.matches("sanitize.rs").count() >= 2,
        "both acquisition sites must be cited: {result}"
    );
    assert!(
        result.contains("opposite order"),
        "the previously recorded opposite order must be cited: {result}"
    );

    // The locks stay usable: the panic fired before the inverted
    // acquisition touched the underlying lock.
    *a.lock() += 1;
    *b.lock() += 1;
}

#[test]
fn equal_rank_nesting_panics() {
    enable();
    // Two distinct locks sharing one rank model a striped lock; holding two
    // stripes at once has no defined order and must be flagged.
    let s1 = Mutex::ranked(130, "t-stripe", 0u32);
    let s2 = Mutex::ranked(130, "t-stripe", 0u32);
    let g1 = s1.lock();
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _g2 = s2.lock();
    }))
    .expect_err("equal-rank nesting must panic");
    drop(g1);
    let msg = panic_message(err);
    assert!(msg.contains("lock-order inversion"), "got: {msg}");
}

#[test]
fn mutex_self_reentry_panics_instead_of_deadlocking() {
    enable();
    let m = Mutex::ranked(140, "t-self", 0u32);
    let g = m.lock();
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _g2 = m.lock(); // would deadlock forever without the sanitizer
    }))
    .expect_err("self re-entry must panic");
    drop(g);
    let msg = panic_message(err);
    assert!(msg.contains("self-deadlock"), "got: {msg}");
}

#[test]
fn rwlock_shared_reentry_is_allowed_but_write_under_read_panics() {
    enable();
    let l = RwLock::ranked(150, "t-rw-reentry", 0u32);
    let r1 = l.read();
    let r2 = l.read(); // shared re-entry: legal
    assert_eq!(*r1 + *r2, 0);
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _w = l.write(); // upgrade attempt: guaranteed deadlock
    }))
    .expect_err("write under read of the same lock must panic");
    let msg = panic_message(err);
    assert!(msg.contains("self-deadlock"), "got: {msg}");
    drop((r1, r2));
    *l.write() += 1;
}

#[test]
fn unranked_locks_are_invisible_to_the_sanitizer() {
    enable();
    let ranked = Mutex::ranked(160, "t-with-unranked", 0u32);
    let unranked = Mutex::new(0u32);
    // Unranked under ranked and ranked under unranked both stay silent.
    let g1 = ranked.lock();
    let g2 = unranked.lock();
    drop((g1, g2));
    let g2 = unranked.lock();
    let g1 = ranked.lock();
    drop((g1, g2));
}

#[test]
fn condvar_wait_releases_the_hold() {
    enable();
    // While a thread waits on a condvar, the guarded lock is NOT held — the
    // sanitizer must pause the stack entry, or the waker's ordinary
    // acquisition pattern would read as nesting under the waiter's lock.
    let pair = Arc::new((Mutex::ranked(170, "t-cv-low", false), Condvar::new()));
    let high = Arc::new(Mutex::ranked(180, "t-cv-high", 0u32));

    let waiter = {
        let pair = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (lock, cv) = &*pair;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            // After wakeup the entry is re-registered: acquiring a higher
            // rank on top is still legal...
            drop(ready);
        })
    };

    // Give the waiter time to block, then signal from a thread that holds a
    // higher-ranked lock — legal order (high acquired alone), and the
    // waiter's paused entry must not trip anything.
    std::thread::sleep(Duration::from_millis(50));
    {
        let (lock, cv) = &*pair;
        let _g = high.lock();
        drop(_g);
        let mut ready = lock.lock();
        *ready = true;
        cv.notify_all();
    }
    waiter.join().expect("waiter exits cleanly");
}

#[test]
fn try_lock_hold_participates_in_later_checks() {
    enable();
    let low = Mutex::ranked(190, "t-try-low", 0u32);
    let high = Mutex::ranked(200, "t-try-high", 0u32);
    // try_lock itself never blocks, so inverted try acquisition is silent...
    let gh = high.lock();
    let gl = low.try_lock().expect("uncontended");
    drop(gl);
    drop(gh);
    // ...but a blocking acquisition under a try-held lock is checked.
    let gh = high.try_lock().expect("uncontended");
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gl = low.lock();
    }))
    .expect_err("blocking low-rank under try-held high rank must panic");
    drop(gh);
    let msg = panic_message(err);
    assert!(msg.contains("lock-order inversion"), "got: {msg}");
}

//! A minimal, API-compatible subset of `rand` 0.9, vendored because this
//! build environment has no crates.io access.
//!
//! Provides the surface this workspace uses: [`rngs::StdRng`] (deterministic,
//! seedable — xoshiro256++ seeded via SplitMix64), the [`Rng`] extension
//! trait with `random`/`random_range`/`random_bool`, [`SeedableRng`], and
//! [`seq::IndexedRandom::choose`].

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable RNGs.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full domain by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::random_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased via rejection of the tail window.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s natural domain (`f64` in `[0,1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random helpers.

    use super::{Rng, RngCore};

    /// Random selection from slices (mirrors `rand::seq::IndexedRandom`).
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
            let u = rng.random_range(3..=5usize);
            assert!((3..=5).contains(&u));
            let f = rng.random_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
            let p: f64 = rng.random();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3];
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}

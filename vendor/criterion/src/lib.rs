//! A minimal, API-compatible subset of `criterion`, vendored because this
//! build environment has no crates.io access.
//!
//! Provides `criterion_group!` / `criterion_main!`, [`Criterion`],
//! benchmark groups, and [`Bencher::iter`]. Measurement is a plain
//! wall-clock loop (warm-up, then timed batches until the configured
//! measurement time); results print as `ns/iter`. No statistical analysis,
//! plots, or CLI filtering — the workspace uses criterion as a timing
//! harness, and absolute numbers come from its own JSON-emitting bench
//! binaries.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let measurement = self.default_measurement;
        BenchmarkGroup {
            _criterion: self,
            name,
            measurement,
            _sample_size: 0,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measurement = self.default_measurement;
        run_benchmark(name, measurement, f);
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    measurement: Duration,
    _sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how long each benchmark is measured for.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement = dur;
        self
    }

    /// Accepted for API compatibility; this harness sizes batches by time,
    /// not by sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self._sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        run_benchmark(&full, self.measurement, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(name: &str, measurement: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass: also calibrates the per-batch iteration count.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warmup_deadline = Instant::now() + measurement.min(Duration::from_millis(200));
    let mut warm_iters = 0u64;
    let mut warm_elapsed = Duration::ZERO;
    while Instant::now() < warmup_deadline {
        f(&mut b);
        warm_iters += b.iters;
        warm_elapsed += b.elapsed;
        // Grow batches toward ~5 ms each.
        if b.elapsed < Duration::from_millis(5) {
            b.iters = (b.iters * 2).min(1 << 20);
        }
    }
    let _ = (warm_iters, warm_elapsed);

    // Timed phase.
    let mut total_iters = 0u64;
    let mut total_elapsed = Duration::ZERO;
    while total_elapsed < measurement {
        f(&mut b);
        total_iters += b.iters;
        total_elapsed += b.elapsed;
    }
    let ns_per_iter = total_elapsed.as_nanos() as f64 / total_iters as f64;
    println!("  {name}: {ns_per_iter:.1} ns/iter ({total_iters} iters)");
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` in a timed loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Produce a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore cargo-bench CLI arguments (e.g. `--bench`).
            let _ = std::env::args();
            $(
                $group();
            )+
        }
    };
}

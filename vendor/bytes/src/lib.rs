//! A minimal, API-compatible subset of the `bytes` crate, vendored because
//! this build environment has no crates.io access.
//!
//! [`Bytes`] is an immutable, reference-counted byte buffer: `clone` is an
//! atomic refcount bump and `slice` shares the parent allocation — the
//! zero-copy properties the hot data path relies on. [`BytesMut`] is a thin
//! growable builder that freezes into a `Bytes`.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    /// Borrowed from static storage: no allocation at all.
    Static(&'static [u8]),
    /// Shared heap allocation; slices adjust `offset`/`len` only.
    Shared(Arc<[u8]>),
}

/// An immutable, cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Self {
            repr: Repr::Static(&[]),
            offset: 0,
            len: 0,
        }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            repr: Repr::Static(bytes),
            offset: 0,
            len: bytes.len(),
        }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_arc(Arc::from(data))
    }

    fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Self {
            repr: Repr::Shared(data),
            offset: 0,
            len,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-slice sharing this buffer's allocation (no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of {}",
            self.len
        );
        Self {
            repr: self.repr.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        let base: &[u8] = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        };
        &base[self.offset..self.offset + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_arc(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self::from_arc(Arc::from(b))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len > 32 {
            write!(f, "… ({} bytes)", self.len)?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Write-side trait mirroring `bytes::BufMut` for the methods this workspace
/// uses.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a little-endian `f64` bit pattern.
    fn put_f64_le(&mut self, n: f64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }
}

/// A growable byte builder that freezes into an immutable [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// An empty builder with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`] (moves the allocation; no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        let (Repr::Shared(ra), Repr::Shared(rb)) = (&a.repr, &b.repr) else {
            panic!("expected shared reprs");
        };
        assert!(Arc::ptr_eq(ra, rb));
    }

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_ref(), &[3, 4]);
        let (Repr::Shared(ra), Repr::Shared(rs)) = (&a.repr, &s2.repr) else {
            panic!("expected shared reprs");
        };
        assert!(Arc::ptr_eq(ra, rs));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"abc").slice(0..4);
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u64_le(7);
        m.put_f64_le(1.5);
        m.extend_from_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 18);
        assert_eq!(u64::from_le_bytes(b[..8].try_into().unwrap()), 7);
        assert_eq!(&b[16..], b"xy");
    }

    #[test]
    fn static_bytes_do_not_allocate() {
        let b = Bytes::from_static(b"hello");
        assert!(matches!(b.repr, Repr::Static(_)));
        assert!(matches!(b.slice(1..3).repr, Repr::Static(_)));
        assert_eq!(b.slice(1..3).as_ref(), b"el");
    }
}

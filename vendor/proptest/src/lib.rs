//! A minimal, API-compatible subset of `proptest`, vendored because this
//! build environment has no crates.io access.
//!
//! Supports what this workspace's property tests use: the [`proptest!`]
//! macro (both `pat in strategy` and `ident: type` parameter forms),
//! [`strategy::Strategy`] with `prop_map`, `any::<T>()`, integer-range and
//! regex-literal strategies (`"[a-z]{1,12}"`-style classes), tuple
//! strategies, and [`collection`]'s `vec` / `btree_set` / `btree_map`.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed, there is **no shrinking** (a failure reports the exact
//! inputs instead), and bodies run as plain panicking assertions.

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `&str` literals act as generators for a small regex subset:
    /// sequences of literal characters and `[a-z0-9]`-style classes, each
    /// optionally followed by `{m}` or `{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    for d in chars.by_ref() {
                        match d {
                            ']' => break,
                            '-' => {
                                prev = Some('-');
                            }
                            d => {
                                if prev == Some('-') {
                                    let lo = *set.last().unwrap_or(&d);
                                    for r in (lo as u32 + 1)..=(d as u32) {
                                        set.push(char::from_u32(r).unwrap());
                                    }
                                    prev = None;
                                } else {
                                    set.push(d);
                                    prev = Some(d);
                                }
                            }
                        }
                    }
                    set
                }
                lit => vec![lit],
            };
            // Optional {m} / {m,n} quantifier.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(0)),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let count = if hi > lo {
                rng.random_range(lo..=hi)
            } else {
                lo
            };
            for _ in 0..count {
                out.push(choices[rng.random_range(0..choices.len().max(1))]);
            }
        }
        out
    }
}

pub mod arbitrary {
    //! Default value generation for primitive types.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical whole-domain generator.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random::<bool>()
        }
    }

    /// The `any::<T>()` marker strategy.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> crate::strategy::Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies mirroring `proptest::collection`.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec`s with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = sample_size(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with sizes drawn from `size`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = sample_size(&self.size, rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times so
            // small element domains still meet minimum sizes when possible.
            for _ in 0..target.max(1) * 16 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeMap`s with sizes drawn from `size`.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = sample_size(&self.size, rng);
            let mut out = BTreeMap::new();
            for _ in 0..target.max(1) * 16 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    fn sample_size(size: &Range<usize>, rng: &mut StdRng) -> usize {
        if size.end <= size.start {
            size.start
        } else {
            rng.random_range(size.clone())
        }
    }
}

pub mod test_runner {
    //! Deterministic per-test drivers used by the `proptest!` expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};

    /// Number of cases each property runs.
    pub const CASES: u32 = 64;

    /// A deterministic RNG derived from the test's full path, so every run
    /// replays the same cases (set `PROPTEST_SEED` to perturb).
    pub fn case_rng(test_path: &str) -> StdRng {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        test_path.hash(&mut hasher);
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            seed.hash(&mut hasher);
        }
        StdRng::seed_from_u64(hasher.finish())
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run property tests. Supports `name(pat in strategy, ...)` and
/// `name(ident: type, ...)` parameter forms.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident ( $($params:tt)* ) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __proptest_rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __proptest_case in 0..$crate::test_runner::CASES {
                    let _ = __proptest_case;
                    $crate::__proptest_bind!(__proptest_rng, $body, $($params)*);
                }
            }
        )+
    };
}

/// Internal parameter-binding muncher for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block $(,)?) => {
        $body
    };
    ($rng:ident, $body:block, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $body $(, $($rest)*)?);
    }};
    ($rng:ident, $body:block, $id:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let $id: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $body $(, $($rest)*)?);
    }};
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_strategy_matches_shape() {
        let mut rng = crate::test_runner::case_rng("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "bad len: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "bad char: {s:?}");
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::test_runner::case_rng("collections");
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let m = Strategy::generate(
                &crate::collection::btree_map(0u64..100, any::<u32>(), 3..6),
                &mut rng,
            );
            assert!((3..6).contains(&m.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_in_form(a in 0u64..10, b in any::<u8>(), s in "[a-c]{2,4}") {
            prop_assert!(a < 10);
            let _ = b;
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len {}", s.len());
        }

        #[test]
        fn macro_typed_form(a: u64, flag: bool) {
            let _ = flag;
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a.wrapping_add(1));
        }
    }
}
